/// Tests for the persistence and hot-swap stack: the byte codec and CRC
/// (util/serialize.h, util/crc32.h), the Fs seam with deterministic fault
/// injection (util/fs.h), the artifact container (core/artifact.h),
/// Pipeline::Save/Load bit-parity for qppnet and mscn, a corruption matrix
/// (every damaged artifact fails with a *typed* Status, never a crash), a
/// crash-consistency sweep (a save killed at every injected fault point
/// leaves the previously published artifact loadable), the golden
/// backward-compat gate, and the RCU hot-swap layer (serve/model_swap.h)
/// under a live AsyncServer.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/artifact.h"
#include "core/pipeline.h"
#include "harness/context.h"
#include "nn/kernels.h"
#include "serve/model_swap.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fs.h"
#include "util/serialize.h"
#include "util/status.h"

namespace qcfe {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "qcfe_persist_" + name;
}

// ------------------------------------------------------------------ crc32

TEST(Crc32Test, KnownAnswers) {
  // The CRC-32/IEEE check value (reversed poly 0xEDB88320).
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string()), 0u);
  EXPECT_NE(Crc32(std::string("a")), Crc32(std::string("b")));
}

// ------------------------------------------------------------- byte codec

TEST(SerializeTest, RoundTripAllTypes) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutBool(true);
  w.PutBool(false);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutF64(-0.0);
  w.PutF64(std::nan(""));
  w.PutF64(1.0 / 3.0);
  w.PutString("hello");
  const std::string bytes = w.TakeBytes();

  ByteReader r(bytes);
  uint8_t u8 = 0;
  bool b = false;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double f = 0.0;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  EXPECT_EQ(u8, 0xAB);
  ASSERT_TRUE(r.ReadBool(&b).ok());
  EXPECT_TRUE(b);
  ASSERT_TRUE(r.ReadBool(&b).ok());
  EXPECT_FALSE(b);
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  EXPECT_EQ(i64, -42);
  ASSERT_TRUE(r.ReadF64(&f).ok());
  EXPECT_TRUE(std::signbit(f));  // -0.0 round-trips exactly
  ASSERT_TRUE(r.ReadF64(&f).ok());
  EXPECT_TRUE(std::isnan(f));  // NaN bit pattern survives
  ASSERT_TRUE(r.ReadF64(&f).ok());
  EXPECT_EQ(f, 1.0 / 3.0);
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializeTest, UnderrunIsDataLoss) {
  ByteWriter w;
  w.PutU32(7);
  const std::string bytes = w.TakeBytes();
  ByteReader r(bytes);
  uint64_t u64 = 0;
  Status status = r.ReadU64(&u64);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, HostileLengthPrefixIsDataLossNotAllocation) {
  // A string claiming 2^60 bytes must be rejected before any allocation.
  ByteWriter w;
  w.PutU64(1ull << 60);
  const std::string bytes = w.TakeBytes();
  ByteReader r(bytes);
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kDataLoss);

  ByteReader r2(bytes);
  uint64_t count = 0;
  EXPECT_EQ(r2.ReadCount(&count, 8).code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, BoolByteAboveOneIsDataLoss) {
  const std::string bytes("\x02", 1);
  ByteReader r(bytes);
  bool b = false;
  EXPECT_EQ(r.ReadBool(&b).code(), StatusCode::kDataLoss);
}

TEST(StatusTest, WithContextComposes) {
  Status inner = Status::DataLoss("inner");
  Status outer = inner.WithContext("outer");
  EXPECT_EQ(outer.code(), StatusCode::kDataLoss);
  EXPECT_EQ(outer.message(), "outer: inner");
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

// --------------------------------------------------------------- Fs seam

TEST(FsTest, AtomicWriteFileRoundTrip) {
  Fs* fs = Fs::Default();
  const std::string path = TempPath("atomic_rt.bin");
  const std::string payload("\x00\x01\xFFqcfe", 7);
  ASSERT_TRUE(AtomicWriteFile(fs, path, payload).ok());
  EXPECT_FALSE(fs->FileExists(path + ".tmp"));
  Result<std::string> read = fs->ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  ASSERT_TRUE(fs->RemoveFile(path).ok());
}

TEST(FsTest, ReadMissingFileIsIoError) {
  Result<std::string> read =
      Fs::Default()->ReadFile(TempPath("does_not_exist.bin"));
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(FsTest, FaultAtEveryOpFailsTypedAndPreservesTarget) {
  const std::string path = TempPath("faulty.bin");
  const std::string v1 = "version-one";
  const std::string v2 = "version-two-longer";
  FaultInjectingFs fs(Fs::Default());
  fs.Arm({});
  ASSERT_TRUE(AtomicWriteFile(&fs, path, v1).ok());
  const int64_t clean_ops = fs.op_count();
  ASSERT_GE(clean_ops, 4);  // open, append, sync, close, rename

  for (int64_t k = 1; k <= clean_ops; ++k) {
    FaultInjectionConfig config;
    config.fail_at_op = k;
    fs.Arm(config);
    Status status = AtomicWriteFile(&fs, path, v2);
    ASSERT_FALSE(status.ok()) << "op " << k;
    EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
    // The previously published content is untouched by the failed save.
    fs.Arm({});
    Result<std::string> read = fs.ReadFile(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, v1) << "op " << k;
  }
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

TEST(FsTest, TornWriteLeavesPrefixAndFails) {
  const std::string path = TempPath("torn.bin");
  FaultInjectingFs fs(Fs::Default());
  FaultInjectionConfig config;
  config.torn_write_at_byte = 3;
  fs.Arm(config);
  Result<std::unique_ptr<WritableFile>> file = fs.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  Status status = (*file)->Append(std::string("abcdef"));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  ASSERT_TRUE((*file)->Close().ok());
  fs.Arm({});
  Result<std::string> read = fs.ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "abc");  // exactly the prefix up to the tear point
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

TEST(FsTest, ShortReadSucceedsWithTruncatedBytes) {
  const std::string path = TempPath("short.bin");
  ASSERT_TRUE(AtomicWriteFile(Fs::Default(), path, "0123456789").ok());
  FaultInjectingFs fs(Fs::Default());
  FaultInjectionConfig config;
  config.short_read_bytes = 4;
  fs.Arm(config);
  Result<std::string> read = fs.ReadFile(path);
  ASSERT_TRUE(read.ok());  // the read *succeeds*: CRCs must catch this later
  EXPECT_EQ(*read, "0123");
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

TEST(FsTest, FailingFsyncFailsTheAtomicWrite) {
  const std::string path = TempPath("fsync.bin");
  FaultInjectingFs fs(Fs::Default());
  FaultInjectionConfig config;
  config.fail_fsync = true;
  fs.Arm(config);
  Status status = AtomicWriteFile(&fs, path, "payload");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(Fs::Default()->FileExists(path));
}

// -------------------------------------------------------- artifact codec

TEST(ArtifactTest, EncodeDecodeRoundTrip) {
  std::vector<artifact::Section> sections;
  sections.push_back({artifact::kFingerprint, "fp-bytes"});
  sections.push_back({artifact::kModel, std::string("\x00\x01", 2)});
  const std::string bytes = artifact::Encode(sections);

  std::vector<artifact::Section> decoded;
  ASSERT_TRUE(artifact::Decode(bytes, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(artifact::Find(decoded, artifact::kFingerprint)->payload,
            "fp-bytes");
  EXPECT_EQ(artifact::Find(decoded, artifact::kModel)->payload.size(), 2u);
  EXPECT_EQ(artifact::Find(decoded, artifact::kStats), nullptr);
}

TEST(ArtifactTest, UnknownSectionIdsAreCarriedNotRejected) {
  // Additive evolution: a reader must tolerate section ids it has never
  // heard of, as long as their framing and CRC are intact.
  std::vector<artifact::Section> sections;
  sections.push_back({artifact::kFingerprint, "fp"});
  sections.push_back({9999u, "from-the-future"});
  std::vector<artifact::Section> decoded;
  ASSERT_TRUE(artifact::Decode(artifact::Encode(sections), &decoded).ok());
  EXPECT_EQ(decoded.size(), 2u);
}

TEST(ArtifactTest, DamageAndSkewAreTyped) {
  std::vector<artifact::Section> sections;
  sections.push_back({artifact::kModel, "model-bytes-here"});
  const std::string good = artifact::Encode(sections);
  std::vector<artifact::Section> out;

  {  // wrong magic
    std::string bad = good;
    bad[0] ^= 0xFF;
    EXPECT_EQ(artifact::Decode(bad, &out).code(), StatusCode::kDataLoss);
  }
  {  // unsupported format version: intact bytes from a different world
    std::string bad = good;
    bad[4] = 2;
    EXPECT_EQ(artifact::Decode(bad, &out).code(),
              StatusCode::kFailedPrecondition);
  }
  {  // payload flip: per-section CRC
    std::string bad = good;
    bad[12 + 12 + 4] ^= 0x01;  // header + section header + payload byte
    EXPECT_EQ(artifact::Decode(bad, &out).code(), StatusCode::kDataLoss);
  }
  {  // trailing garbage
    std::string bad = good + "x";
    EXPECT_EQ(artifact::Decode(bad, &out).code(), StatusCode::kDataLoss);
  }
  {  // duplicate section ids
    std::vector<artifact::Section> dup;
    dup.push_back({artifact::kModel, "a"});
    dup.push_back({artifact::kModel, "b"});
    EXPECT_EQ(artifact::Decode(artifact::Encode(dup), &out).code(),
              StatusCode::kDataLoss);
  }
  // Truncation at every byte length: always typed, never a crash or read
  // past the end (ASan/UBSan enforce the second half).
  for (size_t n = 0; n < good.size(); ++n) {
    Status status = artifact::Decode(good.substr(0, n), &out);
    ASSERT_FALSE(status.ok()) << "length " << n;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << "length " << n;
  }
}

// ------------------------------------------------- shared fitted context

struct SharedFixtures {
  std::unique_ptr<BenchmarkContext> ctx;
  std::vector<PlanSample> train, test;
  std::shared_ptr<const Pipeline> qpp;   // full QCFE around qppnet
  std::shared_ptr<const Pipeline> mscn;  // full QCFE around mscn, fine snaps
};

/// One expensive fit for the whole binary. The mscn pipeline is fitted
/// under the scalar kernel tier so the golden fixture regenerated from it
/// is machine-independent (see GoldenArtifact below).
SharedFixtures* Fixtures() {
  static SharedFixtures* fixtures = [] {
    auto* f = new SharedFixtures();
    HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
    opt.corpus_size = 200;
    opt.num_envs = 2;
    auto ctx = BenchmarkContext::Create(opt);
    QCFE_CHECK(ctx.ok(), "persist_test benchmark context failed");
    f->ctx = std::move(ctx.value());
    f->ctx->Split(200, &f->train, &f->test);

    PipelineConfig qpp_config;
    qpp_config.estimator = "qppnet";
    qpp_config.pre_reduction_epochs = 3;
    qpp_config.train.epochs = 5;
    auto qpp = f->ctx->FitPipeline(qpp_config, f->train);
    QCFE_CHECK(qpp.ok(), "persist_test qppnet fit failed");
    f->qpp = std::shared_ptr<const Pipeline>(std::move(qpp.value()));

    PipelineConfig mscn_config;
    mscn_config.estimator = "mscn";
    mscn_config.snapshot_granularity = SnapshotGranularity::kOperatorTable;
    mscn_config.pre_reduction_epochs = 3;
    mscn_config.train.epochs = 8;
    kernels::ScopedKernelIsa scalar(kernels::KernelIsa::kScalar);
    auto mscn = f->ctx->FitPipeline(mscn_config, f->train);
    QCFE_CHECK(mscn.ok(), "persist_test mscn fit failed");
    f->mscn = std::shared_ptr<const Pipeline>(std::move(mscn.value()));
    return f;
  }();
  return fixtures;
}

std::vector<uint64_t> Bits(const std::vector<double>& values) {
  std::vector<uint64_t> bits(values.size());
  std::memcpy(bits.data(), values.data(), values.size() * sizeof(double));
  return bits;
}

// ------------------------------------------------------------- save/load

TEST(PersistTest, SaveLoadPredictsBitIdenticallyQppNet) {
  SharedFixtures* f = Fixtures();
  const std::string path = TempPath("qpp.qcfa");
  ASSERT_TRUE(f->qpp->Save(path).ok());

  auto loaded = Pipeline::Load(f->ctx->db.get(), &f->ctx->envs,
                               &f->ctx->templates, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  auto want = f->qpp->PredictBatch(f->test);
  auto got = (*loaded)->PredictBatch(f->test);
  ASSERT_TRUE(want.ok() && got.ok());
  EXPECT_EQ(Bits(*want), Bits(*got));
  EXPECT_EQ((*loaded)->name(), f->qpp->name());
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

TEST(PersistTest, SaveLoadPredictsBitIdenticallyMscn) {
  SharedFixtures* f = Fixtures();
  const std::string path = TempPath("mscn.qcfa");
  ASSERT_TRUE(f->mscn->Save(path).ok());

  auto loaded = Pipeline::Load(f->ctx->db.get(), &f->ctx->envs,
                               &f->ctx->templates, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  auto want = f->mscn->PredictBatch(f->test);
  auto got = (*loaded)->PredictBatch(f->test);
  ASSERT_TRUE(want.ok() && got.ok());
  EXPECT_EQ(Bits(*want), Bits(*got));
  // The restored chain is structurally complete: snapshots at the fitted
  // granularity, reduction mask, stats.
  ASSERT_NE((*loaded)->snapshot_store(), nullptr);
  EXPECT_EQ((*loaded)->snapshot_store()->size(), 2u);
  EXPECT_GT((*loaded)->reduction().ReductionRatio(), 0.0);
  EXPECT_EQ((*loaded)->train_stats().loss_curve.size(),
            f->mscn->train_stats().loss_curve.size());
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

TEST(PersistTest, LoadThenResaveIsByteIdentical) {
  SharedFixtures* f = Fixtures();
  const std::string path = TempPath("resave1.qcfa");
  const std::string path2 = TempPath("resave2.qcfa");
  ASSERT_TRUE(f->mscn->Save(path).ok());
  auto loaded = Pipeline::Load(f->ctx->db.get(), &f->ctx->envs,
                               &f->ctx->templates, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE((*loaded)->Save(path2).ok());
  auto a = Fs::Default()->ReadFile(path);
  auto b = Fs::Default()->ReadFile(path2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b) << "re-saved artifact differs from the original";
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
  ASSERT_TRUE(Fs::Default()->RemoveFile(path2).ok());
}

// -------------------------------------------------- corruption matrix

/// Walks the container framing and returns every section-boundary offset:
/// section header start, payload start, payload end, CRC end.
std::vector<size_t> SectionBoundaries(const std::string& bytes) {
  std::vector<size_t> boundaries = {0, 4, 8, 12};
  size_t off = 12;
  while (off + 12 <= bytes.size()) {
    uint64_t len = 0;
    std::memcpy(&len, bytes.data() + off + 4, 8);
    boundaries.push_back(off);
    boundaries.push_back(off + 12);
    boundaries.push_back(off + 12 + static_cast<size_t>(len));
    off += 12 + static_cast<size_t>(len) + 4;
    boundaries.push_back(off);
  }
  return boundaries;
}

TEST(PersistTest, CorruptionMatrixEveryFailureIsTyped) {
  SharedFixtures* f = Fixtures();
  const std::string path = TempPath("corrupt.qcfa");
  ASSERT_TRUE(f->mscn->Save(path).ok());
  auto bytes = Fs::Default()->ReadFile(path);
  ASSERT_TRUE(bytes.ok());

  auto load_bytes = [&](const std::string& damaged) {
    const std::string p = TempPath("corrupt_case.qcfa");
    QCFE_CHECK(AtomicWriteFile(Fs::Default(), p, damaged).ok(),
               "corruption-matrix fixture write failed");
    auto loaded = Pipeline::Load(f->ctx->db.get(), &f->ctx->envs,
                                 &f->ctx->templates, p);
    QCFE_CHECK(Fs::Default()->RemoveFile(p).ok(),
               "corruption-matrix fixture remove failed");
    return loaded.ok() ? Status::OK() : loaded.status();
  };

  // Truncate at every section boundary (and one byte around each).
  for (size_t boundary : SectionBoundaries(*bytes)) {
    for (size_t cut : {boundary, boundary > 0 ? boundary - 1 : 0}) {
      if (cut >= bytes->size()) continue;
      Status status = load_bytes(bytes->substr(0, cut));
      ASSERT_FALSE(status.ok()) << "cut at " << cut;
      EXPECT_EQ(status.code(), StatusCode::kDataLoss)
          << "cut at " << cut << ": " << status.ToString();
    }
  }

  // Flip one byte in the middle of every section payload: the per-section
  // CRC must catch each flip as kDataLoss.
  {
    size_t off = 12;
    while (off + 12 <= bytes->size()) {
      uint64_t len = 0;
      std::memcpy(&len, bytes->data() + off + 4, 8);
      if (len > 0) {
        std::string damaged = *bytes;
        damaged[off + 12 + static_cast<size_t>(len) / 2] ^= 0x40;
        Status status = load_bytes(damaged);
        ASSERT_FALSE(status.ok()) << "flip in section at " << off;
        EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
      }
      off += 12 + static_cast<size_t>(len) + 4;
    }
  }

  {  // magic rewritten
    std::string damaged = *bytes;
    damaged[0] = 'X';
    EXPECT_EQ(load_bytes(damaged).code(), StatusCode::kDataLoss);
  }
  {  // format version from the future: intact bytes, different world
    std::string damaged = *bytes;
    damaged[4] = 9;
    EXPECT_EQ(load_bytes(damaged).code(), StatusCode::kFailedPrecondition);
  }

  // Fingerprint tampering with a *recomputed* CRC: the container framing is
  // intact, so these must fail on fingerprint validation, not checksums.
  std::vector<artifact::Section> sections;
  ASSERT_TRUE(artifact::Decode(*bytes, &sections).ok());
  auto retamper = [&](void (*mutate)(FitFingerprint*)) {
    std::vector<artifact::Section> copy = sections;
    artifact::Section* fp_section = nullptr;
    for (artifact::Section& s : copy) {
      if (s.id == artifact::kFingerprint) fp_section = &s;
    }
    QCFE_CHECK(fp_section != nullptr, "fingerprint section missing");
    FitFingerprint fp;
    ByteReader r(fp_section->payload);
    QCFE_CHECK(artifact::DecodeFingerprint(&r, &fp).ok(),
               "fingerprint decode failed");
    mutate(&fp);
    ByteWriter w;
    artifact::EncodeFingerprint(fp, &w);
    fp_section->payload = w.TakeBytes();
    return load_bytes(artifact::Encode(copy));
  };

  // Schema-hash skew: the artifact belongs to a different catalog.
  EXPECT_EQ(retamper([](FitFingerprint* fp) { fp->schema_hash ^= 1; }).code(),
            StatusCode::kFailedPrecondition);
  // Env-set skew: fit for environments the caller does not serve.
  EXPECT_EQ(retamper([](FitFingerprint* fp) {
              fp->env_ids.push_back(99);
            }).code(),
            StatusCode::kFailedPrecondition);
  // Estimator flip: disagrees with the config section -> corruption.
  EXPECT_EQ(retamper([](FitFingerprint* fp) {
              fp->estimator = "qppnet";
            }).code(),
            StatusCode::kDataLoss);

  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

TEST(PersistTest, ShortReadIsCaughtByFraming) {
  SharedFixtures* f = Fixtures();
  const std::string path = TempPath("shortload.qcfa");
  ASSERT_TRUE(f->qpp->Save(path).ok());
  auto full = Fs::Default()->ReadFile(path);
  ASSERT_TRUE(full.ok());

  FaultInjectingFs fs(Fs::Default());
  FaultInjectionConfig config;
  config.short_read_bytes = static_cast<int64_t>(full->size() / 2);
  fs.Arm(config);
  auto loaded = Pipeline::Load(f->ctx->db.get(), &f->ctx->envs,
                               &f->ctx->templates, path, &fs);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

TEST(PersistTest, EnvironmentSetMismatchIsFailedPrecondition) {
  SharedFixtures* f = Fixtures();
  const std::string path = TempPath("envskew.qcfa");
  ASSERT_TRUE(f->qpp->Save(path).ok());
  std::vector<Environment> fewer(f->ctx->envs.begin(),
                                 f->ctx->envs.end() - 1);
  auto loaded =
      Pipeline::Load(f->ctx->db.get(), &fewer, &f->ctx->templates, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

// --------------------------------------------------- crash consistency

TEST(PersistTest, CrashConsistencySweepOldArtifactSurvivesEveryFault) {
  SharedFixtures* f = Fixtures();
  const std::string path = TempPath("crash.qcfa");
  FaultInjectingFs fs(Fs::Default());

  // Publish v1 cleanly and count the operations of a clean save.
  fs.Arm({});
  ASSERT_TRUE(f->qpp->Save(path, &fs).ok());
  auto v1_bytes = Fs::Default()->ReadFile(path);
  ASSERT_TRUE(v1_bytes.ok());
  fs.Arm({});
  ASSERT_TRUE(f->qpp->Save(path, &fs).ok());
  const int64_t clean_ops = fs.op_count();

  // Kill the save at every operation: the published artifact must stay
  // byte-identical and loadable after every single failure point.
  for (int64_t k = 1; k <= clean_ops; ++k) {
    FaultInjectionConfig config;
    config.fail_at_op = k;
    fs.Arm(config);
    Status status = f->qpp->Save(path, &fs);
    ASSERT_FALSE(status.ok()) << "op " << k;
    EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();

    fs.Arm({});
    auto after = Fs::Default()->ReadFile(path);
    ASSERT_TRUE(after.ok()) << "op " << k;
    ASSERT_TRUE(*after == *v1_bytes) << "op " << k;
    auto loaded = Pipeline::Load(f->ctx->db.get(), &f->ctx->envs,
                                 &f->ctx->templates, path, &fs);
    ASSERT_TRUE(loaded.ok()) << "op " << k << ": "
                             << loaded.status().ToString();
  }

  // Torn writes at a few byte offsets mid-artifact behave the same.
  for (int64_t tear : {16, 1000, 20000}) {
    FaultInjectionConfig config;
    config.torn_write_at_byte = tear;
    fs.Arm(config);
    Status status = f->qpp->Save(path, &fs);
    ASSERT_FALSE(status.ok()) << "tear " << tear;
    fs.Arm({});
    auto after = Fs::Default()->ReadFile(path);
    ASSERT_TRUE(after.ok());
    ASSERT_TRUE(*after == *v1_bytes) << "tear " << tear;
  }

  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

// ------------------------------------------------------ golden artifact

const char* GoldenPath() {
  return QCFE_TESTDATA_DIR "/golden_artifact_v1.qcfa";
}

/// Backward-compat gate: the committed v1 artifact must load and re-save
/// bit-identically forever (format evolution adds sections or bumps the
/// version — it never silently reinterprets old bytes).
///
/// Regenerate (only when intentionally re-baselining) with:
///   QCFE_WRITE_GOLDEN=1 ./build/tests/persist_test
///       --gtest_filter=PersistTest.GoldenArtifactLoadsAndResavesIdentically
/// The fixture is an mscn pipeline with the full QCFE config (fine-grained
/// snapshots + reduction: every section populated), fitted under the scalar
/// kernel tier for machine independence.
TEST(PersistTest, GoldenArtifactLoadsAndResavesIdentically) {
  SharedFixtures* f = Fixtures();
  // The fingerprint records the kernel tier current at *save* time, so the
  // whole write/load/re-save cycle runs scalar-pinned: the committed bytes
  // and the echo are identical on every machine.
  kernels::ScopedKernelIsa scalar(kernels::KernelIsa::kScalar);
  if (std::getenv("QCFE_WRITE_GOLDEN") != nullptr) {
    ASSERT_TRUE(f->mscn->Save(GoldenPath()).ok());
    GTEST_LOG_(INFO) << "wrote golden fixture " << GoldenPath();
  }
  ASSERT_TRUE(Fs::Default()->FileExists(GoldenPath()))
      << "golden fixture missing; see the regeneration comment above";

  auto loaded = Pipeline::Load(f->ctx->db.get(), &f->ctx->envs,
                               &f->ctx->templates, GoldenPath());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Loaded golden predicts bit-identically to the live fit: the fixture's
  // weights came from the same deterministic corpus + scalar-tier training.
  auto want = f->mscn->PredictBatch(f->test);
  auto got = (*loaded)->PredictBatch(f->test);
  ASSERT_TRUE(want.ok() && got.ok());
  EXPECT_EQ(Bits(*want), Bits(*got));

  // Echo gate: re-saving the loaded pipeline reproduces the committed bytes
  // exactly (the writer is a pure echo of loaded values).
  const std::string resaved = TempPath("golden_echo.qcfa");
  ASSERT_TRUE((*loaded)->Save(resaved).ok());
  auto a = Fs::Default()->ReadFile(GoldenPath());
  auto b = Fs::Default()->ReadFile(resaved);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(*a == *b) << "golden artifact no longer round-trips";
  ASSERT_TRUE(Fs::Default()->RemoveFile(resaved).ok());
}

// ------------------------------------------------------------- hot swap

TEST(SwapTest, SwappableModelPublishesVersions) {
  SharedFixtures* f = Fixtures();
  SwappableModel models;
  uint64_t version = 123;
  EXPECT_EQ(models.Current(&version), nullptr);
  EXPECT_EQ(version, 0u);
  EXPECT_EQ(models.CurrentModel(), nullptr);

  EXPECT_EQ(models.Publish(f->qpp), 1u);
  std::shared_ptr<const Pipeline> v1 = models.Current(&version);
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(v1.get(), f->qpp.get());

  EXPECT_EQ(models.Publish(f->mscn), 2u);
  EXPECT_EQ(models.version(), 2u);
  // The v1 borrower still holds a live qppnet pipeline.
  EXPECT_EQ(v1.get(), f->qpp.get());
  std::shared_ptr<const CostModel> model = models.CurrentModel(&version);
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(model.get(), &f->mscn->model());
}

TEST(SwapTest, ServerWithNoPublishedModelFailsTyped) {
  SharedFixtures* f = Fixtures();
  SwappableModel models;
  AsyncServeConfig config;
  config.max_batch = 1;
  auto server = Pipeline::ServeAsync(&models, config);
  auto future = server->Submit(*f->test[0].plan, f->test[0].env_id);
  Result<double> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  server->Shutdown();
  EXPECT_EQ(server->stats().failed, 1u);
}

TEST(SwapTest, LoadAndSwapPublishesAndServesBitIdentically) {
  SharedFixtures* f = Fixtures();
  const std::string path = TempPath("swap_in.qcfa");
  ASSERT_TRUE(f->mscn->Save(path).ok());

  SwappableModel models;
  models.Publish(f->qpp);
  AsyncServeConfig config;
  config.max_batch = 4;
  auto server = Pipeline::ServeAsync(&models, config);

  SwapOptions options;
  options.probe.assign(f->test.begin(), f->test.begin() + 8);
  auto expected = f->mscn->PredictBatch(options.probe);
  ASSERT_TRUE(expected.ok());
  options.expected = *expected;

  auto swapped = LoadAndSwap(f->ctx->db.get(), &f->ctx->envs,
                             &f->ctx->templates, path, options, &models,
                             server.get());
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(models.version(), 2u);

  // Requests after the swap are answered by the new version, bit-identical
  // to the saved pipeline.
  std::vector<std::future<Result<double>>> futures;
  for (size_t i = 0; i < 4; ++i) {
    futures.push_back(server->Submit(*f->test[i].plan, f->test[i].env_id));
  }
  auto want = f->mscn->PredictBatch(
      std::vector<PlanSample>(f->test.begin(), f->test.begin() + 4));
  ASSERT_TRUE(want.ok());
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<double> got = futures[i].get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Bits({*got})[0], Bits({(*want)[i]})[0]) << i;
  }
  server->Shutdown();
  AsyncServeStats stats = server->stats();
  EXPECT_EQ(stats.swaps_published, 1u);
  EXPECT_EQ(stats.swaps_rejected, 0u);
  EXPECT_EQ(stats.model_version, 2u);
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

TEST(SwapTest, FailedSwapLeavesOldModelServingBitIdentically) {
  SharedFixtures* f = Fixtures();
  const std::string good_path = TempPath("swap_good.qcfa");
  const std::string bad_path = TempPath("swap_bad.qcfa");
  ASSERT_TRUE(f->mscn->Save(good_path).ok());
  auto bytes = Fs::Default()->ReadFile(good_path);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = *bytes;
  damaged[damaged.size() / 2] ^= 0x10;  // CRC failure somewhere inside
  ASSERT_TRUE(AtomicWriteFile(Fs::Default(), bad_path, damaged).ok());

  SwappableModel models;
  models.Publish(f->qpp);
  AsyncServeConfig config;
  config.max_batch = 2;
  auto server = Pipeline::ServeAsync(&models, config);

  auto swapped = LoadAndSwap(f->ctx->db.get(), &f->ctx->envs,
                             &f->ctx->templates, bad_path, {}, &models,
                             server.get());
  ASSERT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.status().code(), StatusCode::kDataLoss)
      << swapped.status().ToString();
  EXPECT_EQ(models.version(), 1u);  // old model untouched

  auto f1 = server->Submit(*f->test[0].plan, f->test[0].env_id);
  auto f2 = server->Submit(*f->test[1].plan, f->test[1].env_id);
  auto want = f->qpp->PredictBatch(
      std::vector<PlanSample>(f->test.begin(), f->test.begin() + 2));
  ASSERT_TRUE(want.ok());
  Result<double> r1 = f1.get();
  Result<double> r2 = f2.get();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(Bits({*r1})[0], Bits({(*want)[0]})[0]);
  EXPECT_EQ(Bits({*r2})[0], Bits({(*want)[1]})[0]);

  server->Shutdown();
  AsyncServeStats stats = server->stats();
  EXPECT_EQ(stats.swaps_rejected, 1u);
  EXPECT_EQ(stats.swaps_published, 0u);
  ASSERT_TRUE(Fs::Default()->RemoveFile(good_path).ok());
  ASSERT_TRUE(Fs::Default()->RemoveFile(bad_path).ok());
}

TEST(SwapTest, HotSwapStressServesOnlyWholeVersions) {
  SharedFixtures* f = Fixtures();
  // Two versions with observably different predictions per plan.
  const size_t kProbe = 8;
  std::vector<PlanSample> probe(f->test.begin(), f->test.begin() + kProbe);
  auto qpp_want = f->qpp->PredictBatch(probe);
  auto mscn_want = f->mscn->PredictBatch(probe);
  ASSERT_TRUE(qpp_want.ok() && mscn_want.ok());
  const std::vector<uint64_t> qpp_bits = Bits(*qpp_want);
  const std::vector<uint64_t> mscn_bits = Bits(*mscn_want);

  SwappableModel models;
  models.Publish(f->qpp);
  AsyncServeConfig config;
  config.max_batch = 16;
  config.max_delay_micros = 200;
  config.num_workers = 2;
  auto server = Pipeline::ServeAsync(&models, config);

  // Caller threads hammer the server while the main thread swaps versions
  // back and forth. Every result must be bit-identical to exactly one
  // version's prediction for its plan — a torn batch or half-applied swap
  // would produce a value matching neither.
  constexpr int kCallers = 4;
  constexpr int kRoundsPerCaller = 50;
  std::vector<std::thread> callers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerCaller; ++round) {
        const size_t i = static_cast<size_t>((t + round) % kProbe);
        auto future = server->Submit(*probe[i].plan, probe[i].env_id);
        Result<double> result = future.get();
        if (!result.ok()) {
          ++mismatches;
          continue;
        }
        uint64_t bits = 0;
        double value = *result;
        std::memcpy(&bits, &value, sizeof(bits));
        if (bits != qpp_bits[i] && bits != mscn_bits[i]) ++mismatches;
      }
    });
  }
  for (int swap = 0; swap < 20; ++swap) {
    models.Publish(swap % 2 == 0 ? f->mscn : f->qpp);
  }
  for (std::thread& caller : callers) caller.join();
  server->Shutdown();
  EXPECT_EQ(mismatches.load(), 0);
  AsyncServeStats stats = server->stats();
  EXPECT_EQ(stats.served, static_cast<uint64_t>(kCallers * kRoundsPerCaller));
  EXPECT_GE(stats.model_version, 1u);
}

}  // namespace
}  // namespace qcfe
