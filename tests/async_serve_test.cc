/// Deterministic concurrency suite for the async micro-batching front end
/// (serve/async_server.h). Two layers:
///
///  * Fake-clock flush tests against a stub estimator: batch-full flush
///    before the deadline, deadline flush of a partial batch, shutdown
///    drain/cancel semantics, per-request error isolation and admission
///    control — with zero sleeps. Time only moves when the test calls
///    FakeClock::Advance, so every flush decision is forced, not raced.
///  * Multi-threaded stress tests against real trained estimators: N caller
///    threads submit randomized plans and every delivered result must be
///    bit-identical to a direct PredictBatchMs call on the same model,
///    across 1/2/4 flusher threads and repeated runs. Which micro-batch a
///    request lands in is scheduling-dependent; the bits of its answer are
///    not.
///
/// CI runs this suite under ThreadSanitizer and UBSan (see
/// .github/workflows/ci.yml) so queue/flush races fail the build.

#include <gtest/gtest.h>

#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "harness/context.h"
#include "models/registry.h"
#include "serve/async_server.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace qcfe {
namespace {

// ------------------------------------------------------ fake-clock suite

/// Deterministic stub estimator: prediction is a pure function of the
/// request, and env_id < 0 simulates a poisoned request. No training and no
/// database fixture, so the flush-timing tests run in milliseconds.
class StubModel : public CostModel {
 public:
  std::string name() const override { return "stub"; }

  Status Train(const std::vector<PlanSample>&, const TrainConfig&,
               TrainStats*) override {
    return Status::OK();
  }

  Result<double> PredictMs(const PlanNode& plan, int env_id) const override {
    if (env_id < 0) {
      return Status::NumericError("poisoned request (stub model)");
    }
    return 1.25 * static_cast<double>(env_id) + plan.est_rows;
  }
};

class AsyncFakeClockTest : public ::testing::Test {
 protected:
  AsyncFakeClockTest() {
    plan_.est_rows = 10.0;
    other_plan_.est_rows = 20.0;
  }

  double Direct(const PlanNode& plan, int env_id) {
    return *model_.PredictMs(plan, env_id);
  }

  StubModel model_;
  FakeClock clock_;
  PlanNode plan_, other_plan_;
};

TEST_F(AsyncFakeClockTest, FullBatchFlushesBeforeDeadline) {
  AsyncServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_micros = 1'000'000;  // never reached: time stays at 0
  AsyncServer server(&model_, cfg, &clock_);

  std::vector<std::future<Result<double>>> futures;
  for (int env = 0; env < 4; ++env) futures.push_back(server.Submit(plan_, env));
  // The fourth submission completes the batch; the flush needs no time to
  // pass. get() blocks until the flusher delivers.
  for (int env = 0; env < 4; ++env) {
    Result<double> r = futures[static_cast<size_t>(env)].get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, Direct(plan_, env));
  }
  AsyncServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.batches_flushed, 1u);
  EXPECT_EQ(stats.full_flushes, 1u);
  EXPECT_EQ(stats.deadline_flushes, 0u);
  EXPECT_EQ(stats.served, 4u);
  EXPECT_EQ(stats.mean_occupancy, 4.0);
}

TEST_F(AsyncFakeClockTest, DeadlineFlushesPartialBatch) {
  AsyncServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_micros = 1000;
  AsyncServer server(&model_, cfg, &clock_);

  std::vector<std::future<Result<double>>> futures;
  for (int env = 0; env < 3; ++env) futures.push_back(server.Submit(plan_, env));
  // Nothing can legitimately flush: the batch is not full and the deadline
  // cannot pass until the test advances time.
  EXPECT_EQ(server.stats().batches_flushed, 0u);

  clock_.Advance(cfg.max_delay_micros);
  for (int env = 0; env < 3; ++env) {
    Result<double> r = futures[static_cast<size_t>(env)].get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, Direct(plan_, env));
  }
  AsyncServeStats stats = server.stats();
  EXPECT_EQ(stats.batches_flushed, 1u);
  EXPECT_EQ(stats.deadline_flushes, 1u);
  EXPECT_EQ(stats.full_flushes, 0u);
  EXPECT_EQ(stats.mean_occupancy, 3.0);
}

TEST_F(AsyncFakeClockTest, DeadlineRunsFromTheOldestQueuedRequest) {
  AsyncServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_micros = 1000;
  AsyncServer server(&model_, cfg, &clock_);

  auto first = server.Submit(plan_, 1);  // enqueued at t=0, deadline t=1000
  clock_.Advance(600);
  auto second = server.Submit(other_plan_, 2);  // enqueued at t=600
  EXPECT_EQ(server.stats().batches_flushed, 0u);

  // Reaching the FIRST request's deadline flushes both queued requests.
  clock_.Advance(400);
  EXPECT_EQ(*first.get(), Direct(plan_, 1));
  EXPECT_EQ(*second.get(), Direct(other_plan_, 2));
  AsyncServeStats stats = server.stats();
  EXPECT_EQ(stats.batches_flushed, 1u);
  EXPECT_EQ(stats.deadline_flushes, 1u);
  EXPECT_EQ(stats.served, 2u);
}

TEST_F(AsyncFakeClockTest, ShutdownDrainServesQueuedWork) {
  AsyncServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_micros = 1'000'000;
  AsyncServer server(&model_, cfg, &clock_);

  std::vector<std::future<Result<double>>> futures;
  for (int env = 0; env < 3; ++env) futures.push_back(server.Submit(plan_, env));
  server.Shutdown(AsyncServer::ShutdownMode::kDrain);

  for (int env = 0; env < 3; ++env) {
    Result<double> r = futures[static_cast<size_t>(env)].get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, Direct(plan_, env));
  }
  AsyncServeStats stats = server.stats();
  EXPECT_EQ(stats.batches_flushed, 1u);
  EXPECT_EQ(stats.drain_flushes, 1u);
  EXPECT_EQ(stats.served, 3u);
  EXPECT_EQ(stats.cancelled, 0u);

  // Post-shutdown submissions are rejected, not queued.
  Result<double> late = server.Submit(plan_, 9).get();
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST_F(AsyncFakeClockTest, ShutdownCancelFailsQueuedWork) {
  AsyncServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_micros = 1'000'000;
  AsyncServer server(&model_, cfg, &clock_);

  std::vector<std::future<Result<double>>> futures;
  for (int env = 0; env < 3; ++env) futures.push_back(server.Submit(plan_, env));
  server.Shutdown(AsyncServer::ShutdownMode::kCancel);

  for (auto& f : futures) {
    Result<double> r = f.get();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  }
  AsyncServeStats stats = server.stats();
  EXPECT_EQ(stats.cancelled, 3u);
  EXPECT_EQ(stats.batches_flushed, 0u);
  EXPECT_EQ(stats.served, 0u);
}

TEST_F(AsyncFakeClockTest, PoisonedRequestFailsOnlyItsOwnCaller) {
  AsyncServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_micros = 1'000'000;
  AsyncServer server(&model_, cfg, &clock_);

  // One poisoned request (env_id < 0) co-batched with three healthy ones.
  auto ok0 = server.Submit(plan_, 0);
  auto poisoned = server.Submit(plan_, -1);
  auto ok1 = server.Submit(other_plan_, 1);
  auto ok2 = server.Submit(plan_, 2);

  Result<double> bad = poisoned.get();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNumericError);

  EXPECT_EQ(*ok0.get(), Direct(plan_, 0));
  EXPECT_EQ(*ok1.get(), Direct(other_plan_, 1));
  EXPECT_EQ(*ok2.get(), Direct(plan_, 2));

  AsyncServeStats stats = server.stats();
  EXPECT_EQ(stats.served, 4u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.batches_flushed, 1u);
}

TEST_F(AsyncFakeClockTest, AdmissionControlRejectsWhenQueueIsFull) {
  AsyncServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_micros = 1'000'000;
  cfg.max_queue = 2;
  AsyncServer server(&model_, cfg, &clock_);

  auto a = server.Submit(plan_, 0);
  auto b = server.Submit(plan_, 1);
  // The queue cannot shrink (no flush is possible), so the third submission
  // is deterministically rejected, with the future ready immediately.
  Result<double> rejected = server.Submit(plan_, 2).get();
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  AsyncServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);

  // The accepted requests still drain normally.
  server.Shutdown(AsyncServer::ShutdownMode::kDrain);
  EXPECT_EQ(*a.get(), Direct(plan_, 0));
  EXPECT_EQ(*b.get(), Direct(plan_, 1));
}

TEST_F(AsyncFakeClockTest, MultipleWorkersDrainSeveralFullBatches) {
  AsyncServeConfig cfg;
  cfg.max_batch = 2;
  cfg.max_delay_micros = 1'000'000;
  cfg.num_workers = 2;
  AsyncServer server(&model_, cfg, &clock_);

  std::vector<std::future<Result<double>>> futures;
  for (int env = 0; env < 8; ++env) futures.push_back(server.Submit(plan_, env));
  for (int env = 0; env < 8; ++env) {
    EXPECT_EQ(*futures[static_cast<size_t>(env)].get(), Direct(plan_, env));
  }
  AsyncServeStats stats = server.stats();
  EXPECT_EQ(stats.served, 8u);
  EXPECT_EQ(stats.batches_flushed, 4u);
  EXPECT_EQ(stats.full_flushes, 4u);
  EXPECT_EQ(stats.mean_occupancy, 2.0);
}

TEST_F(AsyncFakeClockTest, HugeDelayDisablesDeadlineWithoutOverflow) {
  // max_delay_micros = INT64_MAX is the natural way to ask for
  // batch-full-only flushing; the deadline arithmetic must saturate (to
  // Clock::kNoDeadline) rather than overflow. Regression for the flusher's
  // head_enqueued + max_delay sum; the UBSan CI job enforces it.
  AsyncServeConfig cfg;
  cfg.max_batch = 2;
  cfg.max_delay_micros = std::numeric_limits<int64_t>::max();
  AsyncServer server(&model_, cfg, &clock_);

  auto first = server.Submit(plan_, 0);
  clock_.Advance(1'000'000'000);  // a long time passes: still no flush
  EXPECT_EQ(server.stats().batches_flushed, 0u);

  auto second = server.Submit(plan_, 1);  // completes the batch
  EXPECT_EQ(*first.get(), Direct(plan_, 0));
  EXPECT_EQ(*second.get(), Direct(plan_, 1));
  AsyncServeStats stats = server.stats();
  EXPECT_EQ(stats.full_flushes, 1u);
  EXPECT_EQ(stats.deadline_flushes, 0u);
}

TEST_F(AsyncFakeClockTest, DeadlineFlushWorksWithMultipleWorkers) {
  AsyncServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_micros = 500;
  cfg.num_workers = 2;
  AsyncServer server(&model_, cfg, &clock_);

  auto f = server.Submit(plan_, 3);
  EXPECT_EQ(server.stats().batches_flushed, 0u);
  clock_.Advance(500);
  EXPECT_EQ(*f.get(), Direct(plan_, 3));
  EXPECT_EQ(server.stats().deadline_flushes, 1u);
}

// --------------------------------------------------------- stress suite

/// Real-model stress fixture, mirroring parallel_test's setup: a quick
/// sysbench context plus small trained estimators.
class AsyncStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
    opt.corpus_size = 120;
    opt.num_envs = 3;
    auto ctx = BenchmarkContext::Create(opt);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    ctx_ = ctx.value().release();
    ctx_->Split(120, &train_, &test_);
  }

  static void TearDownTestSuite() {
    delete ctx_;
    ctx_ = nullptr;
  }

  static std::unique_ptr<CostModel> TrainedModel(const std::string& name,
                                                 uint64_t seed) {
    BaseFeaturizer* featurizer = new BaseFeaturizer(ctx_->db->catalog());
    featurizers_.emplace_back(featurizer);
    auto model = EstimatorRegistry::Global().Create(
        name, {ctx_->db->catalog(), featurizer, seed});
    EXPECT_TRUE(model.ok());
    TrainConfig cfg;
    cfg.epochs = 3;
    EXPECT_TRUE((*model)->Train(train_, cfg, nullptr).ok());
    return std::move(model.value());
  }

  /// `count` samples for caller `caller`, drawn from the test split with a
  /// per-caller Rng stream (deterministic, overlapping across callers so
  /// micro-batches exercise request dedup).
  static std::vector<PlanSample> CallerSamples(uint64_t run_seed,
                                               size_t caller, size_t count) {
    Rng rng(run_seed);
    Rng stream = rng.Split(caller);
    std::vector<PlanSample> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      size_t pick = static_cast<size_t>(
          stream.UniformInt(0, static_cast<int>(test_.size()) - 1));
      out.push_back(test_[pick]);
    }
    return out;
  }

  static BenchmarkContext* ctx_;
  static std::vector<PlanSample> train_, test_;
  static std::vector<std::unique_ptr<BaseFeaturizer>> featurizers_;
};

BenchmarkContext* AsyncStressTest::ctx_ = nullptr;
std::vector<PlanSample> AsyncStressTest::train_;
std::vector<PlanSample> AsyncStressTest::test_;
std::vector<std::unique_ptr<BaseFeaturizer>> AsyncStressTest::featurizers_;

TEST_F(AsyncStressTest, ResultsBitIdenticalToDirectBatchedServing) {
  constexpr size_t kCallers = 4;
  constexpr size_t kPerCaller = 80;
  for (const char* name : {"qppnet", "mscn"}) {
    std::unique_ptr<CostModel> model = TrainedModel(name, 41);
    // Ground truth per caller, straight through the batched serving path.
    for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
      for (uint64_t run = 0; run < 2; ++run) {
        const uint64_t run_seed = 1000 + run;
        std::vector<std::vector<PlanSample>> submissions(kCallers);
        std::vector<std::vector<double>> expected(kCallers);
        for (size_t c = 0; c < kCallers; ++c) {
          submissions[c] = CallerSamples(run_seed, c, kPerCaller);
          auto direct = model->PredictBatchMs(submissions[c], nullptr);
          ASSERT_TRUE(direct.ok()) << name;
          expected[c] = std::move(direct.value());
        }

        AsyncServeConfig cfg;
        cfg.max_batch = 16;
        cfg.max_delay_micros = 200;  // real clock: tiny deadline, no sleeps
        cfg.num_workers = workers;
        cfg.max_queue = 0;  // stress the queue, not admission control
        AsyncServer server(model.get(), cfg);

        std::vector<std::vector<Result<double>>> got(kCallers);
        std::vector<std::thread> callers;
        callers.reserve(kCallers);
        for (size_t c = 0; c < kCallers; ++c) {
          callers.emplace_back([&, c] {
            std::vector<std::future<Result<double>>> futures;
            futures.reserve(submissions[c].size());
            for (const PlanSample& s : submissions[c]) {
              futures.push_back(server.Submit(*s.plan, s.env_id));
            }
            for (auto& f : futures) got[c].push_back(f.get());
          });
        }
        for (std::thread& t : callers) t.join();
        server.Shutdown(AsyncServer::ShutdownMode::kDrain);

        for (size_t c = 0; c < kCallers; ++c) {
          ASSERT_EQ(got[c].size(), kPerCaller);
          for (size_t i = 0; i < kPerCaller; ++i) {
            ASSERT_TRUE(got[c][i].ok())
                << name << " caller " << c << " sample " << i << ": "
                << got[c][i].status().ToString();
            EXPECT_EQ(*got[c][i], expected[c][i])
                << name << " caller " << c << " sample " << i << " workers "
                << workers << " run " << run;
          }
        }
        AsyncServeStats stats = server.stats();
        EXPECT_EQ(stats.submitted, kCallers * kPerCaller);
        EXPECT_EQ(stats.served, kCallers * kPerCaller);
        EXPECT_EQ(stats.failed, 0u);
        EXPECT_GE(stats.mean_occupancy, 1.0);
      }
    }
  }
}

TEST_F(AsyncStressTest, ServerShardsFlushedBatchesAcrossAThreadPool) {
  // Same parity contract when the server also shards each flushed batch
  // across a worker pool (the pipeline-owned pool in production).
  std::unique_ptr<CostModel> model = TrainedModel("qppnet", 43);
  ThreadPool pool(2);
  std::vector<PlanSample> submissions = CallerSamples(7, 0, 120);
  auto direct = model->PredictBatchMs(submissions, nullptr);
  ASSERT_TRUE(direct.ok());

  AsyncServeConfig cfg;
  cfg.max_batch = 32;
  cfg.max_delay_micros = 200;
  cfg.num_workers = 2;
  AsyncServer server(model.get(), cfg, nullptr, &pool);
  std::vector<std::future<Result<double>>> futures;
  futures.reserve(submissions.size());
  for (const PlanSample& s : submissions) {
    futures.push_back(server.Submit(*s.plan, s.env_id));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<double> r = futures[i].get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, (*direct)[i]) << " sample " << i;
  }
}

TEST_F(AsyncStressTest, PipelineServeAsyncMatchesPredictBatch) {
  // End-to-end through the facade: Pipeline::ServeAsync with a FakeClock,
  // deadline-flushing a partial batch, against Pipeline::PredictBatch.
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 3;
  cfg.pre_reduction_epochs = 2;
  cfg.snapshot_scale = 1;
  cfg.async_serve.max_batch = 64;
  cfg.async_serve.max_delay_micros = 1000;
  auto pipeline = ctx_->FitPipeline(cfg, train_);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  auto direct = (*pipeline)->PredictBatch(test_);
  ASSERT_TRUE(direct.ok());

  FakeClock clock;
  std::unique_ptr<AsyncServer> server = (*pipeline)->ServeAsync(&clock);
  std::vector<std::future<Result<double>>> futures;
  futures.reserve(test_.size());
  for (const PlanSample& s : test_) {
    futures.push_back(server->Submit(*s.plan, s.env_id));
  }
  clock.Advance(cfg.async_serve.max_delay_micros);
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<double> r = futures[i].get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, (*direct)[i]) << " sample " << i;
  }
  server->Shutdown();
  EXPECT_GE(server->stats().batches_flushed, 1u);
}

}  // namespace
}  // namespace qcfe
