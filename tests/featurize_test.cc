/// Tests for src/featurize: schema naming/groups, operator encoding content
/// (one-hot placement, numerics, padding), plan-time-only information, and
/// masked featurizers.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "featurize/featurizer.h"
#include "featurize/operator_encoder.h"
#include "sql/parser.h"
#include "util/rng.h"
#include "workload/benchmark.h"

namespace qcfe {
namespace {

struct Fixture {
  std::unique_ptr<Database> db;
  Environment env;

  Fixture() {
    auto bench = MakeBenchmark("tpch");
    db = (*bench)->BuildDatabase(0.03, 21);
    env.hardware = HardwareProfile::H1();
  }

  std::unique_ptr<PlanNode> PlanOf(const std::string& sql) {
    auto spec = ParseQuery(sql);
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto plan = db->Plan(*spec, env.knobs);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(plan.value());
  }
};

TEST(FeatureSchemaTest, AddFindGroup) {
  FeatureSchema s;
  EXPECT_EQ(s.Add("a.one"), 0u);
  EXPECT_EQ(s.Add("a.two"), 1u);
  EXPECT_EQ(s.Add("b.one"), 2u);
  EXPECT_EQ(s.Find("a.two"), 1u);
  EXPECT_FALSE(s.Find("zzz").has_value());
  EXPECT_EQ(s.FindGroup("a.").size(), 2u);
  EXPECT_EQ(s.FindGroup("b.").size(), 1u);
}

TEST(OperatorEncoderTest, SchemaHasAllBlocks) {
  Fixture fx;
  OperatorEncoder enc(fx.db->catalog());
  const FeatureSchema& s = enc.schema();
  EXPECT_FALSE(s.FindGroup("op=").empty());
  EXPECT_FALSE(s.FindGroup("table=").empty());
  EXPECT_FALSE(s.FindGroup("idx=").empty());
  EXPECT_FALSE(s.FindGroup("filtercol=").empty());
  EXPECT_FALSE(s.FindGroup("predop=").empty());
  EXPECT_FALSE(s.FindGroup("jointable=").empty());
  EXPECT_FALSE(s.FindGroup("num.").empty());
  EXPECT_FALSE(s.FindGroup("pad.").empty());
  EXPECT_EQ(s.FindGroup("op=").size(), kNumOpTypes);
  EXPECT_EQ(enc.dim(), s.size());
  // The fixed-width layout deliberately includes unused slots.
  EXPECT_FALSE(s.FindGroup("table=unused").empty());
}

TEST(OperatorEncoderTest, ScanEncodingSetsExpectedBits) {
  Fixture fx;
  OperatorEncoder enc(fx.db->catalog());
  auto plan = fx.PlanOf(
      "select * from lineitem where lineitem.l_quantity > 10");
  ASSERT_EQ(plan->op, OpType::kSeqScan);
  auto x = enc.Encode(*plan, 0);
  const FeatureSchema& s = enc.schema();
  EXPECT_EQ(x[*s.Find("op=Seq Scan")], 1.0);
  EXPECT_EQ(x[*s.Find("table=lineitem")], 1.0);
  EXPECT_EQ(x[*s.Find("filtercol=lineitem.l_quantity")], 1.0);
  EXPECT_EQ(x[*s.Find("predop=>")], 1.0);
  EXPECT_GT(x[*s.Find("num.log_est_rows")], 0.0);
  // Other tables stay zero.
  EXPECT_EQ(x[*s.Find("table=orders")], 0.0);
  // Padding always zero.
  for (size_t i : s.FindGroup("pad.")) EXPECT_EQ(x[i], 0.0);
}

TEST(OperatorEncoderTest, IndexScanSetsIndexBit) {
  Fixture fx;
  OperatorEncoder enc(fx.db->catalog());
  auto plan = fx.PlanOf(
      "select * from orders where orders.o_orderkey = 5");
  ASSERT_EQ(plan->op, OpType::kIndexScan);
  auto x = enc.Encode(*plan, 0);
  const FeatureSchema& s = enc.schema();
  EXPECT_EQ(x[*s.Find("op=Index Scan")], 1.0);
  EXPECT_EQ(x[*s.Find("idx=orders.o_orderkey")], 1.0);
}

TEST(OperatorEncoderTest, JoinEncodingSetsJoinTables) {
  Fixture fx;
  OperatorEncoder enc(fx.db->catalog());
  auto plan = fx.PlanOf(
      "select count(*) from orders join lineitem on orders.o_orderkey = "
      "lineitem.l_orderkey");
  // Root is the aggregate; its child is the join.
  ASSERT_EQ(plan->op, OpType::kAggregate);
  const PlanNode* join = plan->child(0);
  ASSERT_TRUE(join->join.has_value());
  auto x = enc.Encode(*join, 1);
  const FeatureSchema& s = enc.schema();
  EXPECT_EQ(x[*s.Find("jointable=orders")], 1.0);
  EXPECT_EQ(x[*s.Find("jointable=lineitem")], 1.0);
  EXPECT_EQ(x[*s.Find("num.depth")], 1.0);
  // Aggregate node encodes its aggregate counts.
  auto xa = enc.Encode(*plan, 0);
  EXPECT_EQ(xa[*s.Find("num.agg_count")], 1.0);
}

TEST(OperatorEncoderTest, UsesOnlyPlanTimeInformation) {
  Fixture fx;
  OperatorEncoder enc(fx.db->catalog());
  auto plan = fx.PlanOf("select * from customer where customer.c_acctbal > 0");
  auto before = enc.Encode(*plan, 0);
  // Mutating execution artifacts must not change the encoding.
  plan->actual_rows = 12345;
  plan->actual_ms = 99.0;
  plan->work.tuples = 777;
  auto after = enc.Encode(*plan, 0);
  EXPECT_EQ(before, after);
}

TEST(BaseFeaturizerTest, SameWidthForAllOps) {
  Fixture fx;
  BaseFeaturizer f(fx.db->catalog());
  size_t d = f.dim(OpType::kSeqScan);
  for (OpType op : AllOpTypes()) {
    EXPECT_EQ(f.dim(op), d);
    EXPECT_EQ(f.schema(op).size(), d);
  }
}

TEST(MaskedFeaturizerTest, MasksPerOpType) {
  Fixture fx;
  BaseFeaturizer base(fx.db->catalog());
  std::map<OpType, std::vector<size_t>> kept;
  kept[OpType::kSeqScan] = {0, 2, 5};
  MaskedFeaturizer masked(&base, kept);
  EXPECT_EQ(masked.dim(OpType::kSeqScan), 3u);
  // Unlisted types keep full width.
  EXPECT_EQ(masked.dim(OpType::kSort), base.dim(OpType::kSort));
  EXPECT_EQ(masked.TotalRemoved(), base.dim(OpType::kSeqScan) - 3);
  // Schema names follow the kept columns.
  EXPECT_EQ(masked.schema(OpType::kSeqScan).name(1), base.schema(OpType::kSeqScan).name(2));
}

TEST(MaskedFeaturizerTest, EncodeProjectsValues) {
  Fixture fx;
  BaseFeaturizer base(fx.db->catalog());
  auto plan = fx.PlanOf("select * from nation where nation.n_regionkey = 2");
  auto full = base.Encode(*plan, 0, 0);
  std::map<OpType, std::vector<size_t>> kept;
  std::vector<size_t> cols = {1, 3, 7, 20};
  for (OpType op : AllOpTypes()) kept[op] = cols;
  MaskedFeaturizer masked(&base, kept);
  auto small = masked.Encode(*plan, 0, 0);
  ASSERT_EQ(small.size(), cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    EXPECT_EQ(small[i], full[cols[i]]);
  }
}

}  // namespace
}  // namespace qcfe
