/// Tests for the paper's discussed extensions: dynamic-workload feature
/// recall (Section IV discussion / future work) and the fine-grained
/// operator-table snapshot (Section III discussion). Plus property-style
/// sweeps over operator types and benchmarks.

#include <gtest/gtest.h>

#include <set>

#include "core/feature_reduction.h"
#include "core/feature_snapshot.h"
#include "core/pipeline.h"
#include "core/qcfe.h"
#include "core/snapshot_featurizer.h"
#include "models/qppnet.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

namespace qcfe {
namespace {

// ------------------------------------------------------------------ recall

TEST(RecallTest, DriftedWorkloadRecallsNewlyVaryingDims) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.04, 3);
  auto envs = EnvironmentSampler::Sample(3, HardwareProfile::H1(), 5);
  auto all_templates = (*bench)->Templates();

  // Old workload: point selects only (template 0). Most encoding dims never
  // vary: equality predicates, single access path.
  std::vector<QueryTemplate> point_only = {all_templates[0]};
  QueryCollector collector(db.get(), &envs);
  auto old_corpus = collector.Collect(point_only, 150, 7);
  ASSERT_TRUE(old_corpus.ok());
  std::vector<PlanSample> old_train;
  for (const auto& q : old_corpus->queries) {
    old_train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  BaseFeaturizer featurizer(db->catalog());
  QppNet model(&featurizer, QppNetConfig{}, 11);
  TrainConfig tc;
  tc.epochs = 8;
  ASSERT_TRUE(model.Train(old_train, tc, nullptr).ok());

  ReductionConfig rcfg;
  rcfg.algorithm = ReductionAlgorithm::kDiffProp;
  auto reduction = ReduceFeatures(model, old_train, rcfg);
  ASSERT_TRUE(reduction.ok());
  size_t kept_before =
      reduction->per_op.at(OpType::kIndexScan).kept.size();

  // Drifted workload: the full oltp_read_only mix (ranges, sums, sorts,
  // distinct) — BETWEEN predicates and varying cardinalities appear.
  auto new_corpus = collector.Collect(all_templates, 150, 13);
  ASSERT_TRUE(new_corpus.ok());
  std::vector<PlanSample> new_samples;
  for (const auto& q : new_corpus->queries) {
    new_samples.push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  auto recall = RecallFeatures(featurizer, *reduction, new_samples);
  ASSERT_TRUE(recall.ok());
  EXPECT_GT(recall->total_recalled, 0u);
  const auto& idx_recalled = recall->recalled.at(OpType::kIndexScan);
  EXPECT_FALSE(idx_recalled.empty());
  // The BETWEEN predicate-op dim regained inherent value.
  const FeatureSchema& schema = featurizer.schema(OpType::kIndexScan);
  auto between_dim = schema.Find("predop=between");
  ASSERT_TRUE(between_dim.has_value());
  std::set<size_t> recalled_set(idx_recalled.begin(), idx_recalled.end());
  EXPECT_EQ(recalled_set.count(*between_dim), 1u);
  // Merged kept map is a superset of the old one and sorted/unique.
  const auto& new_kept = recall->new_kept.at(OpType::kIndexScan);
  EXPECT_GT(new_kept.size(), kept_before);
  EXPECT_TRUE(std::is_sorted(new_kept.begin(), new_kept.end()));
  std::set<size_t> uniq(new_kept.begin(), new_kept.end());
  EXPECT_EQ(uniq.size(), new_kept.size());
}

TEST(RecallTest, StableWorkloadRecallsNothing) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.04, 17);
  auto envs = EnvironmentSampler::Sample(2, HardwareProfile::H1(), 19);
  auto templates = (*bench)->Templates();
  QueryCollector collector(db.get(), &envs);
  auto corpus = collector.Collect(templates, 160, 23);
  ASSERT_TRUE(corpus.ok());
  std::vector<PlanSample> train;
  for (const auto& q : corpus->queries) {
    train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }
  BaseFeaturizer featurizer(db->catalog());
  QppNet model(&featurizer, QppNetConfig{}, 29);
  TrainConfig tc;
  tc.epochs = 8;
  ASSERT_TRUE(model.Train(train, tc, nullptr).ok());
  ReductionConfig rcfg;
  auto reduction = ReduceFeatures(model, train, rcfg);
  ASSERT_TRUE(reduction.ok());

  // Same workload again: nothing new should vary.
  auto corpus2 = collector.Collect(templates, 160, 31);
  ASSERT_TRUE(corpus2.ok());
  std::vector<PlanSample> again;
  for (const auto& q : corpus2->queries) {
    again.push_back({q.plan.get(), q.env_id, q.total_ms});
  }
  auto recall = RecallFeatures(featurizer, *reduction, again);
  ASSERT_TRUE(recall.ok());
  EXPECT_EQ(recall->total_recalled, 0u);
}

TEST(RecallTest, EmptySamplesRejected) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.03, 37);
  BaseFeaturizer featurizer(db->catalog());
  ReductionResult previous;
  EXPECT_FALSE(RecallFeatures(featurizer, previous, {}).ok());
}

// ------------------------------------------------- fine-grained snapshots

TEST(FineGrainedSnapshotTest, PerTableCoefficientsBeatOperatorLevel) {
  // Two "tables" with very different per-tuple scan costs.
  Rng rng(41);
  std::vector<OperatorObservation> obs;
  for (int i = 0; i < 200; ++i) {
    OperatorObservation a;
    a.op = OpType::kSeqScan;
    a.table = "narrow";
    a.n = rng.Uniform(100, 10000);
    a.ms = 0.0005 * a.n + 0.05;
    obs.push_back(a);
    OperatorObservation b;
    b.op = OpType::kSeqScan;
    b.table = "wide";
    b.n = rng.Uniform(100, 10000);
    b.ms = 0.004 * b.n + 0.05;  // 8x wider rows
    obs.push_back(b);
  }
  auto coarse = FeatureSnapshot::Fit(obs, SnapshotGranularity::kOperator);
  auto fine = FeatureSnapshot::Fit(obs, SnapshotGranularity::kOperatorTable);
  ASSERT_TRUE(coarse.ok() && fine.ok());

  EXPECT_FALSE(coarse->HasFine(OpType::kSeqScan, "narrow"));
  ASSERT_TRUE(fine->HasFine(OpType::kSeqScan, "narrow"));
  ASSERT_TRUE(fine->HasFine(OpType::kSeqScan, "wide"));

  // The fine-grained slopes recover each table's true cost; the coarse slope
  // is a compromise between them.
  double c_narrow = fine->GetFine(OpType::kSeqScan, "narrow").coeffs[0];
  double c_wide = fine->GetFine(OpType::kSeqScan, "wide").coeffs[0];
  EXPECT_NEAR(c_narrow, 0.0005, 2e-4);
  EXPECT_NEAR(c_wide, 0.004, 1e-3);
  double c_coarse = coarse->Get(OpType::kSeqScan).coeffs[0];
  EXPECT_GT(c_coarse, c_narrow);
  EXPECT_LT(c_coarse, c_wide);
  // Unknown tables fall back to the operator-level coefficients.
  EXPECT_DOUBLE_EQ(fine->GetFine(OpType::kSeqScan, "unknown").coeffs[0],
                   fine->Get(OpType::kSeqScan).coeffs[0]);
}

TEST(FineGrainedSnapshotTest, FeaturizerUsesPerTableCoefficients) {
  auto bench = MakeBenchmark("tpch");
  auto db = (*bench)->BuildDatabase(0.04, 43);
  auto envs = EnvironmentSampler::Sample(2, HardwareProfile::H1(), 47);
  auto templates = (*bench)->Templates();
  SnapshotBuilder builder(db.get(), &templates);

  SnapshotStore store;
  ASSERT_TRUE(builder
                  .ComputeSnapshots(envs, /*from_templates=*/true, 2, 53,
                                    &store, nullptr, nullptr, nullptr,
                                    SnapshotGranularity::kOperatorTable)
                  .ok());
  BaseFeaturizer base(db->catalog());
  SnapshotFeaturizer coarse(&base, &store, /*fine_grained=*/false);
  SnapshotFeaturizer fine(&base, &store, /*fine_grained=*/true);

  // A lineitem scan vs a customer scan: fine-grained snapshot dims differ
  // between tables, coarse ones do not.
  PlanNode scan_l;
  scan_l.op = OpType::kSeqScan;
  scan_l.table = "lineitem";
  PlanNode scan_c;
  scan_c.op = OpType::kSeqScan;
  scan_c.table = "customer";

  size_t d = base.dim(OpType::kSeqScan);
  auto coarse_l = coarse.Encode(scan_l, 0, 0);
  auto coarse_c = coarse.Encode(scan_c, 0, 0);
  EXPECT_EQ(coarse_l[d], coarse_c[d]);  // same op-level c0

  const FeatureSnapshot* snap = store.Get(0);
  ASSERT_NE(snap, nullptr);
  if (snap->HasFine(OpType::kSeqScan, "lineitem") &&
      snap->HasFine(OpType::kSeqScan, "customer")) {
    auto fine_l = fine.Encode(scan_l, 0, 0);
    auto fine_c = fine.Encode(scan_c, 0, 0);
    bool any_diff = false;
    for (size_t k = 0; k < kSnapshotWidth; ++k) {
      any_diff |= (fine_l[d + k] != fine_c[d + k]);
    }
    EXPECT_TRUE(any_diff);
  }
}

TEST(FineGrainedSnapshotTest, QcfePipelineAcceptsGranularity) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.03, 59);
  auto envs = EnvironmentSampler::Sample(2, HardwareProfile::H1(), 61);
  auto templates = (*bench)->Templates();
  QueryCollector collector(db.get(), &envs);
  auto corpus = collector.Collect(templates, 120, 67);
  ASSERT_TRUE(corpus.ok());
  std::vector<PlanSample> train;
  for (const auto& q : corpus->queries) {
    train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.snapshot_granularity = SnapshotGranularity::kOperatorTable;
  cfg.use_reduction = false;
  cfg.train.epochs = 6;
  auto built = Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto p = (*built)->PredictMs(*train[0].plan, train[0].env_id);
  EXPECT_TRUE(p.ok());
}

// ------------------------------------------------------ property sweeps

/// Table I design rows are consistent for every operator type: width matches
/// the formula family and PredictMs is linear in the coefficients.
class SnapshotOpSweep : public ::testing::TestWithParam<OpType> {};

TEST_P(SnapshotOpSweep, FitRecoversSyntheticCoefficients) {
  OpType op = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(op));
  std::array<double, kSnapshotWidth> truth = {0.002, 0.3, 0.0008, 0.05};
  std::vector<OperatorObservation> obs;
  for (int i = 0; i < 400; ++i) {
    OperatorObservation o;
    o.op = op;
    o.n = rng.Uniform(50, 20000);
    o.n2 = rng.Uniform(10, 500);
    std::array<double, kSnapshotWidth> row;
    size_t width = FeatureSnapshot::DesignRow(op, o.n, o.n2, &row);
    o.ms = 0.0;
    for (size_t c = 0; c < width; ++c) o.ms += truth[c] * row[c];
    o.ms *= rng.LognormalNoise(0.02);
    obs.push_back(o);
  }
  auto snap = FeatureSnapshot::Fit(obs);
  ASSERT_TRUE(snap.ok());
  // Prediction at fresh points within 10%.
  for (int i = 0; i < 20; ++i) {
    double n = rng.Uniform(50, 20000), n2 = rng.Uniform(10, 500);
    std::array<double, kSnapshotWidth> row;
    size_t width = FeatureSnapshot::DesignRow(op, n, n2, &row);
    double truth_ms = 0.0;
    for (size_t c = 0; c < width; ++c) truth_ms += truth[c] * row[c];
    EXPECT_NEAR(snap->PredictMs(op, n, n2), truth_ms, 0.10 * truth_ms + 1e-9)
        << OpTypeName(op);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, SnapshotOpSweep,
                         ::testing::ValuesIn(AllOpTypes()),
                         [](const ::testing::TestParamInfo<OpType>& info) {
                           std::string name = OpTypeName(info.param);
                           name.erase(
                               std::remove(name.begin(), name.end(), ' '),
                               name.end());
                           return name;
                         });

/// Reduction invariant across algorithms: dims that never vary in D are
/// never kept by FR, and every algorithm returns a valid subset.
class ReductionAlgoSweep
    : public ::testing::TestWithParam<ReductionAlgorithm> {};

TEST_P(ReductionAlgoSweep, KeptSetsAreValidSubsets) {
  static std::unique_ptr<Database> db;
  static std::unique_ptr<BaseFeaturizer> featurizer;
  static std::unique_ptr<QppNet> model;
  static std::vector<PlanSample> train;
  static LabeledQuerySet corpus;
  if (db == nullptr) {
    auto bench = MakeBenchmark("sysbench");
    db = (*bench)->BuildDatabase(0.03, 71);
    static auto envs = EnvironmentSampler::Sample(2, HardwareProfile::H1(), 73);
    QueryCollector collector(db.get(), &envs);
    auto c = collector.Collect((*bench)->Templates(), 150, 79);
    ASSERT_TRUE(c.ok());
    corpus = std::move(c.value());
    for (const auto& q : corpus.queries) {
      train.push_back({q.plan.get(), q.env_id, q.total_ms});
    }
    featurizer = std::make_unique<BaseFeaturizer>(db->catalog());
    model = std::make_unique<QppNet>(featurizer.get(), QppNetConfig{}, 83);
    TrainConfig tc;
    tc.epochs = 8;
    ASSERT_TRUE(model->Train(train, tc, nullptr).ok());
  }
  ReductionConfig cfg;
  cfg.algorithm = GetParam();
  cfg.greedy_max_rows = 80;
  auto result = ReduceFeatures(*model, train, cfg);
  ASSERT_TRUE(result.ok());
  for (const auto& [op, r] : result->per_op) {
    EXPECT_LE(r.kept.size(), r.original_dim);
    EXPECT_EQ(r.kept.size() + r.dropped, r.original_dim);
    std::set<size_t> uniq(r.kept.begin(), r.kept.end());
    EXPECT_EQ(uniq.size(), r.kept.size());
    for (size_t k : r.kept) EXPECT_LT(k, r.original_dim);
    EXPECT_FALSE(r.kept.empty());
  }
  EXPECT_GE(result->ReductionRatio(), 0.0);
  EXPECT_LE(result->ReductionRatio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ReductionAlgoSweep,
                         ::testing::Values(ReductionAlgorithm::kGreedy,
                                           ReductionAlgorithm::kGradient,
                                           ReductionAlgorithm::kDiffProp),
                         [](const ::testing::TestParamInfo<ReductionAlgorithm>&
                                info) {
                           return ReductionAlgorithmName(info.param);
                         });

}  // namespace
}  // namespace qcfe
