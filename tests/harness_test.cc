/// Tests for src/harness: option presets, context creation, splits,
/// evaluation and the Table IV cell runner (including the PGSQL path).

#include <gtest/gtest.h>

#include "harness/evaluate.h"

namespace qcfe {
namespace {

TEST(HarnessOptionsTest, QuickPresetsAreSmall) {
  for (const auto& bench : AllBenchmarkNames()) {
    HarnessOptions opt = OptionsFor(bench, RunScale::kQuick);
    EXPECT_EQ(opt.benchmark, bench);
    EXPECT_LE(opt.num_envs, 5);
    EXPECT_LE(opt.corpus_size, 1000u);
    EXPECT_EQ(opt.scales.size(), 5u);
    EXPECT_LE(opt.scales.back(), opt.corpus_size);
  }
}

TEST(HarnessOptionsTest, FullPresetsMatchPaperGrids) {
  HarnessOptions opt = OptionsFor("tpch", RunScale::kFull);
  EXPECT_EQ(opt.num_envs, 20);  // paper: 20 knob configurations
  EXPECT_EQ(opt.scales,
            (std::vector<size_t>{2000, 4000, 6000, 8000, 10000}));
  EXPECT_EQ(opt.corpus_size, 10000u);
}

TEST(HarnessTest, ContextBuildsAndSplits) {
  HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
  opt.corpus_size = 150;
  auto ctx = BenchmarkContext::Create(opt);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  EXPECT_EQ((*ctx)->corpus.queries.size(), 150u);
  EXPECT_EQ((*ctx)->envs.size(), static_cast<size_t>(opt.num_envs));

  std::vector<PlanSample> train, test;
  (*ctx)->Split(100, &train, &test);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
  for (const auto& s : train) {
    EXPECT_NE(s.plan, nullptr);
    EXPECT_GT(s.label_ms, 0.0);
  }
  // Splitting larger than the corpus clamps gracefully.
  (*ctx)->Split(100000, &train, &test);
  EXPECT_EQ(train.size() + test.size(), 150u);
}

TEST(HarnessTest, TableIvModelListMatchesPaperRows) {
  HarnessOptions opt = OptionsFor("tpch", RunScale::kQuick);
  auto cells = TableIvModels(opt);
  ASSERT_EQ(cells.size(), 5u);
  EXPECT_EQ(cells[0].display_name, "PGSQL");
  EXPECT_EQ(cells[0].estimator, "pgsql");
  EXPECT_FALSE(cells[0].qcfe);
  EXPECT_EQ(cells[1].display_name, "QCFE(mscn)");
  EXPECT_EQ(cells[1].estimator, "mscn");
  EXPECT_TRUE(cells[1].qcfe);
  EXPECT_EQ(cells[2].display_name, "QCFE(qpp)");
  EXPECT_EQ(cells[2].estimator, "qppnet");
  EXPECT_EQ(cells[3].display_name, "MSCN");
  EXPECT_FALSE(cells[3].qcfe);
  EXPECT_EQ(cells[4].display_name, "QPPNet");
  EXPECT_EQ(cells[4].estimator, "qppnet");
}

TEST(HarnessTest, RunCellPgAndLearned) {
  HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
  opt.corpus_size = 200;
  auto ctx = BenchmarkContext::Create(opt);
  ASSERT_TRUE(ctx.ok());
  std::vector<PlanSample> train, test;
  (*ctx)->Split(200, &train, &test);

  CellConfig pg{"PGSQL", "pgsql", false, 0, 0};
  auto pg_res = RunCell(ctx->get(), pg, train, test);
  ASSERT_TRUE(pg_res.ok());
  ASSERT_NE(pg_res->pipeline, nullptr);
  EXPECT_EQ(pg_res->pipeline->name(), "PGSQL");
  EXPECT_GT(pg_res->eval.summary.mean_qerror, 1.0);

  CellConfig qcfe{"QCFE(qpp)", "qppnet", true, 10, 0};
  auto qcfe_res = RunCell(ctx->get(), qcfe, train, test);
  ASSERT_TRUE(qcfe_res.ok()) << qcfe_res.status().ToString();
  ASSERT_NE(qcfe_res->pipeline, nullptr);
  EXPECT_EQ(qcfe_res->pipeline->name(), "QCFE(qpp)");
  EXPECT_GT(qcfe_res->train_seconds, 0.0);
  EXPECT_GT(qcfe_res->eval.inference_seconds, 0.0);
  // The learned model beats the uncalibrated analytical baseline.
  EXPECT_LT(qcfe_res->eval.summary.mean_qerror,
            pg_res->eval.summary.mean_qerror);
}

TEST(HarnessTest, EvaluateModelCountsAllSamples) {
  HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
  opt.corpus_size = 120;
  auto ctx = BenchmarkContext::Create(opt);
  ASSERT_TRUE(ctx.ok());
  std::vector<PlanSample> train, test;
  (*ctx)->Split(120, &train, &test);
  auto pg = EstimatorRegistry::Global().Create("pgsql", {});
  ASSERT_TRUE(pg.ok());
  EvalResult eval = EvaluateModel(**pg, test);
  EXPECT_EQ(eval.summary.count, test.size());
}

}  // namespace
}  // namespace qcfe
