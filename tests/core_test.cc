/// Tests for src/core: feature snapshot fitting (Table I formulas),
/// snapshot featurization, the three reduction algorithms (Algorithms 2-3,
/// Equation 1) and the end-to-end QCFE pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/feature_reduction.h"
#include "core/feature_snapshot.h"
#include "core/pipeline.h"
#include "core/qcfe.h"
#include "core/snapshot_featurizer.h"
#include "engine/cost_simulator.h"
#include "models/qppnet.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

namespace qcfe {
namespace {

// ------------------------------------------------------------- snapshot fit

TEST(FeatureSnapshotTest, DesignRowShapes) {
  std::array<double, kSnapshotWidth> row;
  EXPECT_EQ(FeatureSnapshot::DesignRow(OpType::kSeqScan, 100, 0, &row), 2u);
  EXPECT_DOUBLE_EQ(row[0], 100.0);
  EXPECT_DOUBLE_EQ(row[1], 1.0);
  EXPECT_DOUBLE_EQ(row[2], 0.0);

  EXPECT_EQ(FeatureSnapshot::DesignRow(OpType::kSort, 8, 0, &row), 2u);
  EXPECT_DOUBLE_EQ(row[0], 8.0 * 3.0);  // n log2 n

  EXPECT_EQ(FeatureSnapshot::DesignRow(OpType::kNestedLoop, 10, 20, &row), 4u);
  EXPECT_DOUBLE_EQ(row[0], 200.0);
  EXPECT_DOUBLE_EQ(row[1], 10.0);
  EXPECT_DOUBLE_EQ(row[2], 20.0);
  EXPECT_DOUBLE_EQ(row[3], 1.0);
}

TEST(FeatureSnapshotTest, FitRecoversKnownCoefficients) {
  // Synthetic scan observations: t = 0.002 n + 0.5, with noise.
  Rng rng(3);
  std::vector<OperatorObservation> obs;
  for (int i = 0; i < 300; ++i) {
    OperatorObservation o;
    o.op = OpType::kSeqScan;
    o.n = rng.Uniform(100, 50000);
    o.ms = (0.002 * o.n + 0.5) * rng.LognormalNoise(0.05);
    obs.push_back(o);
  }
  auto snap = FeatureSnapshot::Fit(obs);
  ASSERT_TRUE(snap.ok());
  const OperatorSnapshot& s = snap->Get(OpType::kSeqScan);
  EXPECT_NEAR(s.coeffs[0], 0.002, 0.0005);
  EXPECT_NEAR(s.coeffs[1], 0.5, 0.35);
  EXPECT_EQ(s.num_observations, 300u);
  // Unobserved types stay zero.
  EXPECT_EQ(snap->Get(OpType::kSort).num_observations, 0u);
  EXPECT_DOUBLE_EQ(snap->Get(OpType::kSort).coeffs[0], 0.0);
}

TEST(FeatureSnapshotTest, FitNestedLoopQuadraticTerm) {
  Rng rng(5);
  std::vector<OperatorObservation> obs;
  for (int i = 0; i < 400; ++i) {
    OperatorObservation o;
    o.op = OpType::kNestedLoop;
    o.n = rng.Uniform(10, 500);
    o.n2 = rng.Uniform(10, 500);
    o.ms = (1e-4 * o.n * o.n2 + 5e-4 * o.n + 5e-4 * o.n2 + 0.1) *
           rng.LognormalNoise(0.03);
    obs.push_back(o);
  }
  auto snap = FeatureSnapshot::Fit(obs);
  ASSERT_TRUE(snap.ok());
  EXPECT_NEAR(snap->Get(OpType::kNestedLoop).coeffs[0], 1e-4, 3e-5);
  // Prediction at a fresh point is close.
  double pred = snap->PredictMs(OpType::kNestedLoop, 200, 300);
  double truth = 1e-4 * 200 * 300 + 5e-4 * 200 + 5e-4 * 300 + 0.1;
  EXPECT_NEAR(pred, truth, 0.15 * truth);
}

TEST(FeatureSnapshotTest, CoefficientsAreNonNegative) {
  Rng rng(7);
  std::vector<OperatorObservation> obs;
  for (int i = 0; i < 100; ++i) {
    OperatorObservation o;
    o.op = OpType::kHashJoin;
    o.n = rng.Uniform(10, 1000);
    o.ms = 0.3 * rng.LognormalNoise(0.3);  // no n-dependence at all
    obs.push_back(o);
  }
  auto snap = FeatureSnapshot::Fit(obs);
  ASSERT_TRUE(snap.ok());
  for (double c : snap->Get(OpType::kHashJoin).coeffs) EXPECT_GE(c, 0.0);
}

// Snapshot captures the environment: fit snapshots under two environments
// that differ only in hardware speed and check the scan slope ordering.
TEST(FeatureSnapshotTest, SnapshotTracksEnvironmentCoefficients) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.05, 11);
  Environment fast;
  fast.id = 0;
  fast.hardware = HardwareProfile::H2();
  Environment slow;
  slow.id = 1;
  slow.hardware = HardwareProfile::Hdd();
  std::vector<Environment> envs = {fast, slow};

  QueryCollector collector(db.get(), &envs);
  auto set_fast = collector.Collect((*bench)->Templates(), 150, 13);
  ASSERT_TRUE(set_fast.ok());
  // Collect() alternates environments; split observations by env id.
  std::vector<OperatorObservation> obs_fast, obs_slow;
  for (const auto& q : set_fast->queries) {
    q.plan->VisitConst([&](const PlanNode* n) {
      OperatorObservation o;
      o.op = n->op;
      o.n = n->input_card;
      o.n2 = n->input_card2;
      o.ms = n->actual_ms;
      (q.env_id == 0 ? obs_fast : obs_slow).push_back(o);
    });
  }
  auto snap_fast = FeatureSnapshot::Fit(obs_fast);
  auto snap_slow = FeatureSnapshot::Fit(obs_slow);
  ASSERT_TRUE(snap_fast.ok() && snap_slow.ok());
  // The slow machine has a strictly larger per-matched-row cost for the
  // index scans that dominate this workload (sysbench seq-scan inputs are a
  // single constant table size, so only index scans identify a slope here).
  double c_fast = snap_fast->Get(OpType::kIndexScan).coeffs[0];
  double c_slow = snap_slow->Get(OpType::kIndexScan).coeffs[0];
  ASSERT_GT(snap_fast->Get(OpType::kIndexScan).num_observations, 0u);
  EXPECT_GT(c_slow, c_fast);
}

// ----------------------------------------------------- snapshot featurizer

TEST(SnapshotFeaturizerTest, AppendsEnvSpecificDims) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.03, 17);
  BaseFeaturizer base(db->catalog());

  SnapshotStore store;
  {
    std::vector<OperatorObservation> obs;
    Rng rng(19);
    for (int i = 0; i < 50; ++i) {
      OperatorObservation o;
      o.op = OpType::kSeqScan;
      o.n = rng.Uniform(10, 1000);
      o.ms = 0.001 * o.n + 0.1;
      obs.push_back(o);
    }
    auto s0 = FeatureSnapshot::Fit(obs);
    ASSERT_TRUE(s0.ok());
    store.Put(0, std::move(s0.value()));
    for (auto& o : obs) o.ms *= 3.0;  // a 3x slower environment
    auto s1 = FeatureSnapshot::Fit(obs);
    ASSERT_TRUE(s1.ok());
    store.Put(1, std::move(s1.value()));
  }

  SnapshotFeaturizer sf(&base, &store);
  EXPECT_EQ(sf.dim(OpType::kSeqScan), base.dim(OpType::kSeqScan) + kSnapshotWidth);
  EXPECT_EQ(sf.schema(OpType::kSeqScan).name(sf.dim(OpType::kSeqScan) - 1),
            "snapshot.c3");

  PlanNode scan;
  scan.op = OpType::kSeqScan;
  scan.table = "sbtest1";
  auto x0 = sf.Encode(scan, 0, 0);
  auto x1 = sf.Encode(scan, 0, 1);
  size_t c0 = base.dim(OpType::kSeqScan);
  // Same base features, different snapshot dims across environments.
  for (size_t i = 0; i < c0; ++i) EXPECT_EQ(x0[i], x1[i]);
  EXPECT_NEAR(x1[c0], 3.0 * x0[c0], 1e-9);
  // Unknown environment -> zero snapshot dims.
  auto x9 = sf.Encode(scan, 0, 99);
  for (size_t i = 0; i < kSnapshotWidth; ++i) EXPECT_EQ(x9[c0 + i], 0.0);
}

// --------------------------------------------------------------- reduction

/// Shared corpus + trained models for the reduction tests.
class ReductionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto bench = MakeBenchmark("sysbench");
    db_ = (*bench)->BuildDatabase(0.04, 23).release();
    envs_ = new std::vector<Environment>(
        EnvironmentSampler::Sample(3, HardwareProfile::H1(), 29));
    QueryCollector collector(db_, envs_);
    auto set = collector.Collect((*bench)->Templates(), 300, 37);
    ASSERT_TRUE(set.ok());
    corpus_ = new LabeledQuerySet(std::move(set.value()));
    featurizer_ = new BaseFeaturizer(db_->catalog());
    train_ = new std::vector<PlanSample>();
    for (const auto& q : corpus_->queries) {
      train_->push_back({q.plan.get(), q.env_id, q.total_ms});
    }
    model_ = new QppNet(featurizer_, QppNetConfig{}, 43);
    TrainConfig cfg;
    cfg.epochs = 15;
    ASSERT_TRUE(model_->Train(*train_, cfg, nullptr).ok());
  }

  static Database* db_;
  static std::vector<Environment>* envs_;
  static LabeledQuerySet* corpus_;
  static BaseFeaturizer* featurizer_;
  static std::vector<PlanSample>* train_;
  static QppNet* model_;
};

Database* ReductionTest::db_ = nullptr;
std::vector<Environment>* ReductionTest::envs_ = nullptr;
LabeledQuerySet* ReductionTest::corpus_ = nullptr;
BaseFeaturizer* ReductionTest::featurizer_ = nullptr;
std::vector<PlanSample>* ReductionTest::train_ = nullptr;
QppNet* ReductionTest::model_ = nullptr;

TEST_F(ReductionTest, DiffPropDropsDeadDimsKeepsCardinality) {
  ReductionConfig cfg;
  cfg.algorithm = ReductionAlgorithm::kDiffProp;
  cfg.num_references = 32;
  auto result = ReduceFeatures(*model_, *train_, cfg);
  ASSERT_TRUE(result.ok());
  // Sysbench runs scans/sorts/aggregates; check a type with observations.
  const OpReductionResult& r = result->per_op.at(OpType::kIndexScan);
  EXPECT_GT(r.dropped, 0u);
  std::set<size_t> kept(r.kept.begin(), r.kept.end());
  const FeatureSchema& schema = featurizer_->schema(OpType::kIndexScan);
  // Padding dims are constant zero -> importance exactly 0 -> dropped.
  for (size_t i : schema.FindGroup("pad.")) EXPECT_EQ(kept.count(i), 0u);
  // The cardinality estimate is the dominant cost driver -> kept.
  EXPECT_EQ(kept.count(*schema.Find("num.log_est_rows")), 1u);
  // Scores vector aligns with dims; dead dims score exactly zero.
  ASSERT_EQ(r.scores.size(), featurizer_->dim(OpType::kIndexScan));
  for (size_t i : schema.FindGroup("pad.")) {
    EXPECT_DOUBLE_EQ(r.scores[i], 0.0);
  }
  EXPECT_GT(result->ReductionRatio(), 0.1);
  EXPECT_GT(result->runtime_seconds, 0.0);
}

TEST_F(ReductionTest, GradientProducesScoresButKeepsSomeDeadDims) {
  ReductionConfig cfg;
  cfg.algorithm = ReductionAlgorithm::kGradient;
  auto result = ReduceFeatures(*model_, *train_, cfg);
  ASSERT_TRUE(result.ok());
  const OpReductionResult& r = result->per_op.at(OpType::kIndexScan);
  ASSERT_FALSE(r.scores.empty());
  // Gradients flow through untrained random weights of dead dims, so (unlike
  // difference propagation) dead-dim scores are generally nonzero — the
  // paper's criticism of gradient reduction.
  const FeatureSchema& schema = featurizer_->schema(OpType::kIndexScan);
  double dead_score_sum = 0.0;
  for (size_t i : schema.FindGroup("pad.")) dead_score_sum += r.scores[i];
  EXPECT_GT(dead_score_sum, 0.0);
}

TEST_F(ReductionTest, GreedyDropsFewFeatures) {
  ReductionConfig cfg;
  cfg.algorithm = ReductionAlgorithm::kGreedy;
  cfg.greedy_max_rows = 120;
  auto result = ReduceFeatures(*model_, *train_, cfg);
  ASSERT_TRUE(result.ok());
  // Greedy is conservative (paper: ~1% reduction vs ~41% for FR).
  ReductionConfig fr_cfg;
  fr_cfg.algorithm = ReductionAlgorithm::kDiffProp;
  auto fr = ReduceFeatures(*model_, *train_, fr_cfg);
  ASSERT_TRUE(fr.ok());
  EXPECT_LT(result->ReductionRatio(), fr->ReductionRatio());
}

TEST_F(ReductionTest, RuntimeGrowsWithReferences) {
  ReductionConfig small;
  small.algorithm = ReductionAlgorithm::kDiffProp;
  small.num_references = 8;
  ReductionConfig large = small;
  large.num_references = 128;
  auto rs = ReduceFeatures(*model_, *train_, small);
  auto rl = ReduceFeatures(*model_, *train_, large);
  ASSERT_TRUE(rs.ok() && rl.ok());
  EXPECT_GT(rl->runtime_seconds, rs->runtime_seconds);
  // Reduction ratio is robust to the reference count (paper Table VI).
  EXPECT_NEAR(rl->ReductionRatio(), rs->ReductionRatio(), 0.15);
}

TEST_F(ReductionTest, KeptMapUniformUnionsAcrossTypes) {
  ReductionResult result;
  OpReductionResult a;
  a.original_dim = 5;
  a.kept = {0, 2};
  OpReductionResult b;
  b.original_dim = 5;
  b.kept = {2, 4};
  result.per_op[OpType::kSeqScan] = a;
  result.per_op[OpType::kSort] = b;
  auto uniform = result.KeptMap(true);
  EXPECT_EQ(uniform[OpType::kSeqScan], (std::vector<size_t>{0, 2, 4}));
  EXPECT_EQ(uniform[OpType::kSort], (std::vector<size_t>{0, 2, 4}));
  auto per_type = result.KeptMap(false);
  EXPECT_EQ(per_type[OpType::kSort], (std::vector<size_t>{2, 4}));
}

TEST_F(ReductionTest, MaskedRetrainKeepsAccuracy) {
  ReductionConfig cfg;
  cfg.algorithm = ReductionAlgorithm::kDiffProp;
  auto result = ReduceFeatures(*model_, *train_, cfg);
  ASSERT_TRUE(result.ok());
  MaskedFeaturizer masked(featurizer_, result->KeptMap(false));
  QppNet reduced(&masked, QppNetConfig{}, 47);
  TrainConfig tc;
  tc.epochs = 15;
  ASSERT_TRUE(reduced.Train(*train_, tc, nullptr).ok());

  std::vector<double> actual, pred_full, pred_reduced;
  for (size_t i = 0; i < 60; ++i) {
    const PlanSample& s = (*train_)[i];
    actual.push_back(s.label_ms);
    pred_full.push_back(*model_->PredictMs(*s.plan, s.env_id));
    pred_reduced.push_back(*reduced.PredictMs(*s.plan, s.env_id));
  }
  double q_full = Mean(QErrors(actual, pred_full));
  double q_reduced = Mean(QErrors(actual, pred_reduced));
  // Dropping dead features must not blow up accuracy.
  EXPECT_LT(q_reduced, q_full * 1.5 + 0.5);
}

// ----------------------------------------------------------------- QCFE e2e

TEST(QcfeTest, FullPipelineBuildsAndPredicts) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.04, 53);
  auto envs = EnvironmentSampler::Sample(3, HardwareProfile::H1(), 59);
  auto templates = (*bench)->Templates();
  QueryCollector collector(db.get(), &envs);
  auto corpus = collector.Collect(templates, 260, 61);
  ASSERT_TRUE(corpus.ok());
  std::vector<PlanSample> train, test;
  auto split = SplitIndices(corpus->queries.size(), 0.8, 67);
  for (size_t i : split.train) {
    const auto& q = corpus->queries[i];
    train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }
  for (size_t i : split.test) {
    const auto& q = corpus->queries[i];
    test.push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.snapshot_from_templates = true;
  cfg.snapshot_scale = 1;
  cfg.pre_reduction_epochs = 12;
  cfg.train.epochs = 40;
  auto built = Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Pipeline& m = **built;

  EXPECT_EQ(m.name(), "QCFE(qpp)");
  EXPECT_EQ(m.snapshot_store()->size(), envs.size());
  EXPECT_GT(m.snapshot_collection_ms(), 0.0);
  EXPECT_GT(m.snapshot_num_queries(), 0u);
  EXPECT_GT(m.reduction().ReductionRatio(), 0.0);
  // Index scans are the workhorse operator of sysbench: its featurizer
  // width must have shrunk relative to the snapshot-augmented width.
  size_t snap_dim = m.snapshot_featurizer()->dim(OpType::kIndexScan);
  EXPECT_LT(m.active_featurizer()->dim(OpType::kIndexScan), snap_dim);
  // Explain() reports the whole fitted chain.
  EXPECT_NE(m.Explain().find("QCFE(qpp)"), std::string::npos);
  EXPECT_NE(m.Explain().find("snapshot"), std::string::npos);

  std::vector<double> actual, predicted;
  for (const auto& s : test) {
    auto p = m.PredictMs(*s.plan, s.env_id);
    ASSERT_TRUE(p.ok());
    actual.push_back(s.label_ms);
    predicted.push_back(*p);
  }
  MetricSummary summary = Summarize(actual, predicted);
  EXPECT_LT(summary.mean_qerror, 5.0);
  EXPECT_GT(summary.pearson, 0.5);
}

TEST(QcfeTest, BaselineConfigYieldsPlainModelNames) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.03, 71);
  auto envs = EnvironmentSampler::Sample(2, HardwareProfile::H1(), 73);
  auto templates = (*bench)->Templates();
  QueryCollector collector(db.get(), &envs);
  auto corpus = collector.Collect(templates, 120, 79);
  ASSERT_TRUE(corpus.ok());
  std::vector<PlanSample> train;
  for (const auto& q : corpus->queries) {
    train.push_back({q.plan.get(), q.env_id, q.total_ms});
  }
  PipelineConfig cfg;
  cfg.estimator = "mscn";
  cfg.use_snapshot = false;
  cfg.use_reduction = false;
  cfg.train.epochs = 10;
  auto built = Pipeline::Fit(db.get(), &envs, &templates, cfg, train);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ((*built)->name(), "MSCN");
  EXPECT_EQ((*built)->snapshot_store(), nullptr);
  EXPECT_EQ((*built)->snapshot_featurizer(), nullptr);
  // With snapshot and reduction off, the model consumes the base encoding.
  EXPECT_NE((*built)->active_featurizer(), nullptr);
  EXPECT_EQ((*built)->active_featurizer(), (*built)->model().featurizer());
}

TEST(QcfeTest, FstCollectionIsCheaperThanFso) {
  auto bench = MakeBenchmark("tpch");
  auto db = (*bench)->BuildDatabase(0.05, 83);
  auto envs = EnvironmentSampler::Sample(2, HardwareProfile::H1(), 89);
  auto templates = (*bench)->Templates();
  SnapshotBuilder builder(db.get(), &templates);

  SnapshotStore fso_store, fst_store;
  double fso_ms = 0.0, fst_ms = 0.0;
  size_t fso_q = 0, fst_q = 0, fso_t = 0, fst_t = 0;
  ASSERT_TRUE(builder
                  .ComputeSnapshots(envs, /*from_templates=*/false, 1, 91,
                                    &fso_store, &fso_ms, &fso_q, &fso_t)
                  .ok());
  ASSERT_TRUE(builder
                  .ComputeSnapshots(envs, /*from_templates=*/true, 1, 93,
                                    &fst_store, &fst_ms, &fst_q, &fst_t)
                  .ok());
  EXPECT_EQ(fso_store.size(), envs.size());
  EXPECT_EQ(fst_store.size(), envs.size());
  // The simplified templates run single scans/joins instead of the full
  // TPC-H pipelines: collection cost per query must be much lower (paper
  // Table V: ~11-50%).
  double fso_per_query = fso_ms / static_cast<double>(fso_q);
  double fst_per_query = fst_ms / static_cast<double>(fst_q);
  EXPECT_LT(fst_per_query, 0.7 * fso_per_query);
  EXPECT_EQ(fso_t, templates.size());
  EXPECT_GT(fst_t, 0u);
}

TEST(QcfeTest, SnapshotStoreExtensionForNewHardware) {
  auto bench = MakeBenchmark("sysbench");
  auto db = (*bench)->BuildDatabase(0.03, 97);
  auto envs = EnvironmentSampler::Sample(2, HardwareProfile::H1(), 101);
  auto templates = (*bench)->Templates();
  SnapshotBuilder builder(db.get(), &templates);

  SnapshotStore store;
  double ms = 0.0;
  ASSERT_TRUE(builder.ComputeSnapshots(envs, true, 1, 103, &store, &ms,
                                       nullptr, nullptr)
                  .ok());
  EXPECT_EQ(store.size(), 2u);

  // Transfer scenario: new environments on different hardware get ids 100+.
  std::vector<Environment> h2_envs =
      EnvironmentSampler::Sample(2, HardwareProfile::H2(), 107);
  for (auto& e : h2_envs) e.id += 100;
  ASSERT_TRUE(builder.ComputeSnapshots(h2_envs, true, 1, 109, &store, &ms,
                                       nullptr, nullptr)
                  .ok());
  EXPECT_EQ(store.size(), 4u);
  EXPECT_NE(store.Get(100), nullptr);
  EXPECT_NE(store.Get(0), nullptr);
  EXPECT_EQ(store.Get(55), nullptr);
}

}  // namespace
}  // namespace qcfe
