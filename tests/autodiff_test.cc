/// Finite-difference verification of the tape-based autodiff stack, bottom
/// up: every layer type's Backward against central differences through the
/// raw Layer API, then both estimators' composite training losses (QPPNet's
/// plan-structured per-node loss, MSCN's pooled set-module loss) against
/// central differences of TrainingLoss over real workload corpora. These
/// suites pin the contract chunk-parallel training rests on: backprop reads
/// only the caller's tape and writes only the caller's sink.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "models/cost_model.h"
#include "models/mscn.h"
#include "models/qppnet.h"
#include "nn/layers.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "util/rng.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

namespace qcfe {
namespace {

constexpr double kEps = 1e-5;

/// Scalar probe loss L = sum_ij weight_ij * out_ij with fixed random
/// weights, so grad_output = weight and dL/d(anything) is checkable by
/// central differences.
Matrix ProbeWeights(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix w(rows, cols);
  w.RandomizeGaussian(&rng, 1.0);
  return w;
}

double ProbeLoss(const Layer& layer, const Matrix& input,
                 const Matrix& probe) {
  Matrix out = layer.Forward(input);
  double loss = 0.0;
  for (size_t i = 0; i < out.data().size(); ++i) {
    loss += probe.data()[i] * out.data()[i];
  }
  return loss;
}

/// Checks dL/d(input) and, for parameterised layers, dL/d(param) against
/// central differences. `layer` may be mutated transiently (parameter
/// perturbation) but is restored.
void CheckLayerGradients(Layer* layer, Matrix input, double tol) {
  Matrix probe = ProbeWeights(input.rows(),
                              layer->Forward(input).cols(), 99);
  Matrix output = layer->Forward(input);

  // Sink slots shaped like the layer's grads (empty for activations).
  std::vector<Matrix> sink_storage;
  std::vector<Matrix*> sink;
  for (Matrix* g : layer->Grads()) {
    sink_storage.emplace_back(g->rows(), g->cols());
  }
  for (Matrix& m : sink_storage) sink.push_back(&m);

  Matrix gin = layer->Backward(probe, input, output,
                               sink.empty() ? nullptr : sink.data());

  // Input gradient.
  for (size_t r = 0; r < input.rows(); ++r) {
    for (size_t c = 0; c < input.cols(); ++c) {
      Matrix xp = input, xm = input;
      xp.At(r, c) += kEps;
      xm.At(r, c) -= kEps;
      double numeric =
          (ProbeLoss(*layer, xp, probe) - ProbeLoss(*layer, xm, probe)) /
          (2 * kEps);
      EXPECT_NEAR(gin.At(r, c), numeric, tol)
          << "d(input) at (" << r << "," << c << ")";
    }
  }

  // Parameter gradients (Linear only).
  std::vector<Matrix*> params = layer->Params();
  for (size_t p = 0; p < params.size(); ++p) {
    for (size_t k = 0; k < params[p]->data().size(); ++k) {
      double save = params[p]->data()[k];
      params[p]->data()[k] = save + kEps;
      double lp = ProbeLoss(*layer, input, probe);
      params[p]->data()[k] = save - kEps;
      double lm = ProbeLoss(*layer, input, probe);
      params[p]->data()[k] = save;
      EXPECT_NEAR(sink[p]->data()[k], (lp - lm) / (2 * kEps), tol)
          << "d(param " << p << ") entry " << k;
    }
  }
}

TEST(LayerAutodiffTest, LinearBackwardMatchesFiniteDifferences) {
  Rng rng(7);
  LinearLayer layer(4, 3, &rng);
  Matrix x(5, 4);
  x.RandomizeGaussian(&rng, 1.0);
  CheckLayerGradients(&layer, x, 1e-6);
}

TEST(LayerAutodiffTest, ReluBackwardMatchesFiniteDifferences) {
  ReluLayer layer;
  Rng rng(8);
  Matrix x(4, 6);
  x.RandomizeGaussian(&rng, 1.0);
  // Keep inputs away from the kink so central differences are clean.
  for (double& v : x.data()) {
    if (std::fabs(v) < 0.05) v = v < 0.0 ? v - 0.1 : v + 0.1;
  }
  CheckLayerGradients(&layer, x, 1e-6);
}

TEST(LayerAutodiffTest, SigmoidBackwardMatchesFiniteDifferences) {
  SigmoidLayer layer;
  Rng rng(9);
  Matrix x(4, 6);
  x.RandomizeGaussian(&rng, 1.5);
  CheckLayerGradients(&layer, x, 1e-6);
}

TEST(LayerAutodiffTest, TanhBackwardMatchesFiniteDifferences) {
  TanhLayer layer;
  Rng rng(10);
  Matrix x(4, 6);
  x.RandomizeGaussian(&rng, 1.5);
  CheckLayerGradients(&layer, x, 1e-6);
}

TEST(LayerAutodiffTest, FusedEpilogueGradientsMatchFiniteDifferences) {
  // End-to-end through Mlp::Forward/Backward, whose linear layers run the
  // fused bias-epilogue kernels and whose ReLU backward masks in place on
  // the tape scratch: dL/d(input) and dL/d(params) of a Linear+ReLU+Linear
  // stack must still match central differences.
  Rng rng(21);
  Mlp net({5, 7, 1}, Activation::kRelu, &rng);
  Matrix x(6, 5);
  x.RandomizeGaussian(&rng, 1.0);
  // Keep pre-activations away from the ReLU kink.
  Mlp::Tape probe_tape;
  net.Forward(x, &probe_tape);
  for (double& v : probe_tape.activations[1].data()) {
    ASSERT_TRUE(std::isfinite(v));
  }

  Mlp::Tape tape;
  Matrix out = net.Forward(x, &tape);
  Matrix grad(out.rows(), out.cols());
  grad.Fill(1.0);  // L = sum(out)
  GradSink sink;
  sink.InitLike(net.Grads());
  Matrix gin = net.Backward(grad, &tape, &sink);

  auto loss = [&]() {
    Matrix o = net.Predict(x);
    double acc = 0.0;
    for (double v : o.data()) acc += v;
    return acc;
  };
  // Input gradient, every entry.
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      double save = x.At(r, c);
      x.At(r, c) = save + kEps;
      double lp = loss();
      x.At(r, c) = save - kEps;
      double lm = loss();
      x.At(r, c) = save;
      EXPECT_NEAR(gin.At(r, c), (lp - lm) / (2 * kEps), 1e-5)
          << "d(input) at (" << r << "," << c << ")";
    }
  }
  // Parameter gradients, spot checks per matrix.
  std::vector<Matrix*> params = net.Params();
  for (size_t p = 0; p < params.size(); ++p) {
    for (size_t k = 0; k < std::min<size_t>(params[p]->data().size(), 4);
         ++k) {
      double save = params[p]->data()[k];
      params[p]->data()[k] = save + kEps;
      double lp = loss();
      params[p]->data()[k] = save - kEps;
      double lm = loss();
      params[p]->data()[k] = save;
      EXPECT_NEAR(sink.slot(p).data()[k], (lp - lm) / (2 * kEps), 1e-5)
          << "d(param " << p << ") entry " << k;
    }
  }
}

TEST(LayerAutodiffTest, NullSinkSkipsParameterAccumulation) {
  Rng rng(11);
  LinearLayer layer(3, 2, &rng);
  Matrix x(2, 3);
  x.RandomizeGaussian(&rng, 1.0);
  Matrix out = layer.Forward(x);
  Matrix probe = ProbeWeights(2, 2, 12);
  // Null param_grads must still produce the input gradient and must not
  // touch the optimizer-bound accumulators.
  layer.ZeroGrad();
  Matrix gin = layer.Backward(probe, x, out, nullptr);
  EXPECT_GT(gin.Norm(), 0.0);
  for (Matrix* g : layer.Grads()) EXPECT_EQ(g->Norm(), 0.0);
}

// ------------------------------------------------- composite estimator loss

/// Shared corpus for the estimator-level checks: a small sysbench workload,
/// two environments.
class EstimatorAutodiffTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto bench = MakeBenchmark("sysbench");
    db_ = (*bench)->BuildDatabase(0.05, 131).release();
    envs_ = new std::vector<Environment>(
        EnvironmentSampler::Sample(2, HardwareProfile::H1(), 141));
    QueryCollector collector(db_, envs_);
    auto set = collector.Collect((*bench)->Templates(), 80, 151);
    ASSERT_TRUE(set.ok());
    corpus_ = new LabeledQuerySet(std::move(set.value()));
    featurizer_ = new BaseFeaturizer(db_->catalog());
    samples_ = new std::vector<PlanSample>();
    for (size_t i = 0; i < 16; ++i) {
      const LabeledQuery& q = corpus_->queries[i];
      samples_->push_back(PlanSample{q.plan.get(), q.env_id, q.total_ms});
    }
  }

  /// FD-checks `model.TrainingLoss` gradients for a trained estimator:
  /// zeroes the gradient list, accumulates analytically once, then probes a
  /// few entries of every parameter matrix with central differences.
  template <typename Model>
  static void CheckCompositeLoss(Model* model) {
    // Nudge every parameter off exact zero first. Zero-initialised biases
    // fed by all-zero padded set rows (e.g. MSCN's join module on a no-join
    // workload) leave ReLU preactivations at exactly 0 — the kink — where
    // the analytic subgradient (0) and a central difference (one-sided
    // slope) legitimately disagree.
    Rng noise(777);
    for (Matrix* p : model->Params()) {
      for (double& v : p->data()) v += noise.Gaussian(0.0, 0.01);
    }
    for (Matrix* g : model->Grads()) g->Fill(0.0);
    auto analytic = model->TrainingLoss(*samples_, /*accumulate=*/true);
    ASSERT_TRUE(analytic.ok()) << analytic.status().ToString();

    std::vector<Matrix*> params = model->Params();
    std::vector<Matrix*> grads = model->Grads();
    ASSERT_EQ(params.size(), grads.size());
    size_t checked = 0;
    for (size_t p = 0; p < params.size(); ++p) {
      for (size_t k = 0; k < std::min<size_t>(params[p]->data().size(), 3);
           ++k) {
        double save = params[p]->data()[k];
        params[p]->data()[k] = save + kEps;
        auto lp = model->TrainingLoss(*samples_, /*accumulate=*/false);
        params[p]->data()[k] = save - kEps;
        auto lm = model->TrainingLoss(*samples_, /*accumulate=*/false);
        params[p]->data()[k] = save;
        ASSERT_TRUE(lp.ok() && lm.ok());
        double numeric = (*lp - *lm) / (2 * kEps);
        double g = grads[p]->data()[k];
        EXPECT_NEAR(g, numeric, 1e-4 + 5e-3 * std::fabs(g))
            << "param matrix " << p << " entry " << k;
        ++checked;
      }
    }
    EXPECT_GT(checked, 0u);

    // TrainingLoss without accumulation must be grad-neutral: the analytic
    // gradients from above survive the FD probing byte-for-byte.
    // (Every probe above called TrainingLoss(accumulate=false) twice.)
    std::vector<double> snapshot;
    for (Matrix* g : grads) {
      for (double v : g->data()) snapshot.push_back(v);
    }
    auto again = model->TrainingLoss(*samples_, /*accumulate=*/false);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*analytic, *again);
    size_t i = 0;
    for (Matrix* g : grads) {
      for (double v : g->data()) EXPECT_EQ(v, snapshot[i++]);
    }
  }

  static Database* db_;
  static std::vector<Environment>* envs_;
  static LabeledQuerySet* corpus_;
  static BaseFeaturizer* featurizer_;
  static std::vector<PlanSample>* samples_;
};

Database* EstimatorAutodiffTest::db_ = nullptr;
std::vector<Environment>* EstimatorAutodiffTest::envs_ = nullptr;
LabeledQuerySet* EstimatorAutodiffTest::corpus_ = nullptr;
BaseFeaturizer* EstimatorAutodiffTest::featurizer_ = nullptr;
std::vector<PlanSample>* EstimatorAutodiffTest::samples_ = nullptr;

TEST_F(EstimatorAutodiffTest, QppNetCompositeLossMatchesFiniteDifferences) {
  QppNet model(featurizer_, QppNetConfig{}, 161);
  TrainConfig cfg;
  cfg.epochs = 2;
  ASSERT_TRUE(model.Train(*samples_, cfg, nullptr).ok());
  CheckCompositeLoss(&model);
}

TEST_F(EstimatorAutodiffTest, MscnCompositeLossMatchesFiniteDifferences) {
  Mscn model(db_->catalog(), featurizer_, MscnConfig{}, 171);
  TrainConfig cfg;
  cfg.epochs = 2;
  ASSERT_TRUE(model.Train(*samples_, cfg, nullptr).ok());
  CheckCompositeLoss(&model);
}

}  // namespace
}  // namespace qcfe
