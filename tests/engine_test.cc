/// Unit + property tests for src/engine: value model, B+-tree, tables,
/// statistics, predicates, planner decisions, executor correctness (checked
/// against brute-force evaluation), the cost simulator's environment
/// sensitivity, and the Database facade with its execution cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "engine/btree.h"
#include "engine/catalog.h"
#include "engine/cost_simulator.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/knobs.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "engine/predicate.h"
#include "engine/query.h"
#include "engine/stats.h"
#include "engine/table.h"
#include "engine/types.h"
#include "util/rng.h"

namespace qcfe {
namespace {

// ---------------------------------------------------------------- fixtures

/// Builds a small two-table database:
///   t1(id int pk, grp int 0..9, val float, name string), 1000 rows
///   t2(id int, t1_id int fk->t1.id, amount float), 3000 rows
/// with indexes on t1.id and t2.t1_id.
std::unique_ptr<Database> MakeTestDb() {
  auto db = std::make_unique<Database>("testdb");
  Rng rng(99);

  auto t1 = std::make_unique<Table>(
      "t1", Schema({{"id", DataType::kInt64},
                    {"grp", DataType::kInt64},
                    {"val", DataType::kFloat64},
                    {"name", DataType::kString}}));
  for (int64_t i = 0; i < 1000; ++i) {
    std::string name = (i % 7 == 0) ? "alpha" + std::to_string(i)
                                    : "beta" + std::to_string(i);
    EXPECT_TRUE(t1->AppendRow({Value(i), Value(i % 10),
                               Value(rng.Uniform(0.0, 100.0)), Value(name)})
                    .ok());
  }
  EXPECT_TRUE(t1->BuildIndex("id").ok());
  EXPECT_TRUE(db->catalog()->AddTable(std::move(t1)).ok());

  auto t2 = std::make_unique<Table>(
      "t2", Schema({{"id", DataType::kInt64},
                    {"t1_id", DataType::kInt64},
                    {"amount", DataType::kFloat64}}));
  for (int64_t i = 0; i < 3000; ++i) {
    EXPECT_TRUE(t2->AppendRow({Value(i), Value(rng.UniformInt(0, 999)),
                               Value(rng.Uniform(0.0, 1000.0))})
                    .ok());
  }
  EXPECT_TRUE(t2->BuildIndex("t1_id").ok());
  EXPECT_TRUE(db->catalog()->AddTable(std::move(t2)).ok());

  db->Analyze();
  return db;
}

Predicate MakePred(const std::string& table, const std::string& col,
                   CompareOp op, std::vector<Value> lits) {
  Predicate p;
  p.column = {table, col};
  p.op = op;
  p.literals = std::move(lits);
  return p;
}

Environment DefaultEnv() {
  Environment env;
  env.hardware = HardwareProfile::H1();
  return env;
}

// ------------------------------------------------------------------- types

TEST(TypesTest, CompareNumericCrossType) {
  EXPECT_EQ(CompareValues(Value(int64_t{3}), Value(3.0)), 0);
  EXPECT_LT(CompareValues(Value(int64_t{2}), Value(2.5)), 0);
  EXPECT_GT(CompareValues(Value(3.5), Value(int64_t{3})), 0);
}

TEST(TypesTest, CompareStrings) {
  EXPECT_LT(CompareValues(Value(std::string("abc")), Value(std::string("abd"))), 0);
  EXPECT_EQ(CompareValues(Value(std::string("x")), Value(std::string("x"))), 0);
}

TEST(TypesTest, MixedTypeComparisonIsDeterministic) {
  EXPECT_LT(CompareValues(Value(int64_t{5}), Value(std::string("a"))), 0);
  EXPECT_GT(CompareValues(Value(std::string("a")), Value(int64_t{5})), 0);
}

TEST(TypesTest, HashIntegralDoubleMatchesInt) {
  // Cross-type equi-join keys must hash consistently.
  EXPECT_EQ(HashValue(Value(int64_t{42})), HashValue(Value(42.0)));
  EXPECT_NE(HashValue(Value(int64_t{42})), HashValue(Value(int64_t{43})));
}

TEST(TypesTest, ValueToStringForms) {
  EXPECT_EQ(ValueToString(Value(int64_t{7})), "7");
  EXPECT_EQ(ValueToString(Value(std::string("hi"))), "'hi'");
}

TEST(TypesTest, WidthsArePositive) {
  EXPECT_EQ(DataTypeWidth(DataType::kInt64), 8u);
  EXPECT_GT(DataTypeWidth(DataType::kString), 8u);
}

// ------------------------------------------------------------------ btree

TEST(BTreeTest, BulkLoadAndPointLookup) {
  BPlusTree tree;
  std::vector<std::pair<double, uint32_t>> entries;
  for (uint32_t i = 0; i < 1000; ++i) {
    entries.emplace_back(static_cast<double>(999 - i), i);
  }
  tree.BulkLoad(std::move(entries));
  EXPECT_EQ(tree.size(), 1000u);
  std::vector<uint32_t> out;
  tree.PointLookup(500.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 499u);  // key 500 was inserted with row id 999-500
}

TEST(BTreeTest, RangeScanInclusiveExclusive) {
  BPlusTree tree;
  std::vector<std::pair<double, uint32_t>> entries;
  for (uint32_t i = 0; i < 100; ++i) entries.emplace_back(i, i);
  tree.BulkLoad(std::move(entries));

  std::vector<uint32_t> out;
  tree.RangeScan(10.0, true, 20.0, true, &out);
  EXPECT_EQ(out.size(), 11u);
  out.clear();
  tree.RangeScan(10.0, false, 20.0, false, &out);
  EXPECT_EQ(out.size(), 9u);
  // Results come back in key order.
  out.clear();
  tree.RangeScan(0.0, true, 99.0, true, &out);
  ASSERT_EQ(out.size(), 100u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(BTreeTest, OneSidedRanges) {
  BPlusTree tree;
  std::vector<std::pair<double, uint32_t>> entries;
  for (uint32_t i = 0; i < 50; ++i) entries.emplace_back(i, i);
  tree.BulkLoad(std::move(entries));
  std::vector<uint32_t> out;
  tree.RangeScan(-HUGE_VAL, true, 9.0, true, &out);
  EXPECT_EQ(out.size(), 10u);
  out.clear();
  tree.RangeScan(40.0, true, HUGE_VAL, true, &out);
  EXPECT_EQ(out.size(), 10u);
}

TEST(BTreeTest, DuplicateKeys) {
  BPlusTree tree;
  std::vector<std::pair<double, uint32_t>> entries;
  for (uint32_t i = 0; i < 300; ++i) entries.emplace_back(i % 3, i);
  tree.BulkLoad(std::move(entries));
  std::vector<uint32_t> out;
  tree.PointLookup(1.0, &out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(BTreeTest, InsertSplitsAndStaysSearchable) {
  BPlusTree tree;
  Rng rng(5);
  std::vector<double> keys;
  for (int i = 0; i < 5000; ++i) {
    double k = rng.Uniform(0, 1000);
    keys.push_back(k);
    tree.Insert(k, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(tree.size(), 5000u);
  EXPECT_GT(tree.height(), 1u);
  // Every inserted key must be findable.
  for (int i = 0; i < 100; ++i) {
    std::vector<uint32_t> out;
    tree.PointLookup(keys[static_cast<size_t>(i)], &out);
    EXPECT_FALSE(out.empty());
  }
  // Full scan returns everything in sorted key order.
  std::vector<uint32_t> all;
  tree.RangeScan(-HUGE_VAL, true, HUGE_VAL, true, &all);
  EXPECT_EQ(all.size(), 5000u);
}

TEST(BTreeTest, EmptyTreeScansReturnNothing) {
  BPlusTree tree;
  std::vector<uint32_t> out;
  tree.RangeScan(-HUGE_VAL, true, HUGE_VAL, true, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(BTreeTest, BulkLoadMatchesInsertResults) {
  Rng rng(7);
  std::vector<std::pair<double, uint32_t>> entries;
  for (uint32_t i = 0; i < 2000; ++i) {
    entries.emplace_back(rng.Uniform(0, 100), i);
  }
  BPlusTree bulk, incr;
  for (const auto& [k, v] : entries) incr.Insert(k, v);
  bulk.BulkLoad(entries);
  std::vector<uint32_t> a, b;
  bulk.RangeScan(25.0, true, 75.0, true, &a);
  incr.RangeScan(25.0, true, 75.0, true, &b);
  std::multiset<uint32_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  EXPECT_EQ(sa, sb);
}

// ------------------------------------------------------------------ schema

TEST(SchemaTest, FindColumnExactAndSuffix) {
  Schema s({{"t1.id", DataType::kInt64}, {"t1.val", DataType::kFloat64}});
  EXPECT_EQ(s.FindColumn("t1.id"), 0u);
  EXPECT_EQ(s.FindColumn("val"), 1u);
  EXPECT_FALSE(s.FindColumn("missing").has_value());
}

TEST(SchemaTest, SuffixAmbiguityReturnsNothing) {
  Schema s({{"a.id", DataType::kInt64}, {"b.id", DataType::kInt64}});
  EXPECT_FALSE(s.FindColumn("id").has_value());
  EXPECT_EQ(s.FindColumn("a.id"), 0u);
}

TEST(SchemaTest, RowWidthAndConcat) {
  Schema a({{"x", DataType::kInt64}});
  Schema b({{"y", DataType::kString}});
  EXPECT_EQ(a.RowWidth(), 8u);
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_columns(), 2u);
  EXPECT_EQ(c.RowWidth(), 8u + DataTypeWidth(DataType::kString));
}

// ------------------------------------------------------------------- table

TEST(TableTest, AppendAndRead) {
  Table t("x", Schema({{"a", DataType::kInt64}, {"b", DataType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(std::string("one"))}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(std::get<int64_t>(t.GetValue(0, 0)), 1);
  EXPECT_EQ(std::get<std::string>(t.GetValue(0, 1)), "one");
}

TEST(TableTest, ArityAndTypeErrors) {
  Table t("x", Schema({{"a", DataType::kInt64}}));
  EXPECT_FALSE(t.AppendRow({}).ok());
  EXPECT_FALSE(t.AppendRow({Value(std::string("not an int"))}).ok());
  // Numeric coercion is allowed.
  EXPECT_TRUE(t.AppendRow({Value(2.0)}).ok());
  EXPECT_EQ(std::get<int64_t>(t.GetValue(0, 0)), 2);
}

TEST(TableTest, PagesGrowWithRows) {
  Table t("x", Schema({{"a", DataType::kInt64}}));
  for (int64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i)}).ok());
  }
  EXPECT_GE(t.num_pages(), 9u);  // 80KB / 8KB pages
}

TEST(TableTest, IndexBuildAndLookup) {
  Table t("x", Schema({{"a", DataType::kInt64}}));
  for (int64_t i = 0; i < 100; ++i) ASSERT_TRUE(t.AppendRow({Value(i)}).ok());
  ASSERT_TRUE(t.BuildIndex("a").ok());
  const TableIndex* idx = t.FindIndex("a");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->tree->size(), 100u);
  EXPECT_FALSE(t.BuildIndex("zzz").ok());
  EXPECT_EQ(t.FindIndex("zzz"), nullptr);
}

// ------------------------------------------------------------------- stats

TEST(StatsTest, AnalyzeBasics) {
  auto db = MakeTestDb();
  const TableStats* ts = db->catalog()->GetStats("t1");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->num_rows, 1000u);
  const ColumnStats& id = ts->columns.at("id");
  EXPECT_DOUBLE_EQ(id.min, 0.0);
  EXPECT_DOUBLE_EQ(id.max, 999.0);
  EXPECT_EQ(id.n_distinct, 1000u);
  const ColumnStats& grp = ts->columns.at("grp");
  EXPECT_EQ(grp.n_distinct, 10u);
}

TEST(StatsTest, FractionBelowIsMonotonic) {
  auto db = MakeTestDb();
  const ColumnStats& id = db->catalog()->GetStats("t1")->columns.at("id");
  double prev = -1.0;
  for (double x = 0; x <= 1000; x += 50) {
    double f = id.FractionBelow(x);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(id.FractionBelow(-5), 0.0);
  EXPECT_DOUBLE_EQ(id.FractionBelow(2000), 1.0);
}

TEST(StatsTest, UniformSelectivityIsAccurate) {
  auto db = MakeTestDb();
  const ColumnStats& id = db->catalog()->GetStats("t1")->columns.at("id");
  // id < 250 over uniform 0..999 -> ~25%.
  EXPECT_NEAR(id.EstimateSelectivity(-1, 250.0), 0.25, 0.05);
  // equality on a unique column -> 1/1000.
  EXPECT_NEAR(id.EstimateSelectivity(0, 10.0), 0.001, 1e-6);
}

TEST(StatsTest, SamplesAreFromTheColumn) {
  auto db = MakeTestDb();
  const ColumnStats& grp = db->catalog()->GetStats("t1")->columns.at("grp");
  EXPECT_FALSE(grp.sample.empty());
  for (const auto& v : grp.sample) {
    int64_t x = std::get<int64_t>(v);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 9);
  }
}

// --------------------------------------------------------------- predicate

TEST(PredicateTest, AllOperatorsMatchCorrectly) {
  Value v(int64_t{5});
  EXPECT_TRUE(MakePred("t", "c", CompareOp::kEq, {Value(int64_t{5})}).Matches(v));
  EXPECT_TRUE(MakePred("t", "c", CompareOp::kNe, {Value(int64_t{4})}).Matches(v));
  EXPECT_TRUE(MakePred("t", "c", CompareOp::kLt, {Value(int64_t{6})}).Matches(v));
  EXPECT_FALSE(MakePred("t", "c", CompareOp::kLt, {Value(int64_t{5})}).Matches(v));
  EXPECT_TRUE(MakePred("t", "c", CompareOp::kLe, {Value(int64_t{5})}).Matches(v));
  EXPECT_TRUE(MakePred("t", "c", CompareOp::kGt, {Value(int64_t{4})}).Matches(v));
  EXPECT_TRUE(MakePred("t", "c", CompareOp::kGe, {Value(int64_t{5})}).Matches(v));
  EXPECT_TRUE(MakePred("t", "c", CompareOp::kIn,
                       {Value(int64_t{1}), Value(int64_t{5})})
                  .Matches(v));
  EXPECT_FALSE(MakePred("t", "c", CompareOp::kIn, {Value(int64_t{1})}).Matches(v));
  EXPECT_TRUE(MakePred("t", "c", CompareOp::kBetween,
                       {Value(int64_t{0}), Value(int64_t{9})})
                  .Matches(v));
  EXPECT_FALSE(MakePred("t", "c", CompareOp::kBetween,
                        {Value(int64_t{6}), Value(int64_t{9})})
                   .Matches(v));
}

TEST(PredicateTest, LikePatterns) {
  EXPECT_TRUE(LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(LikeMatch("hello world", "%world"));
  EXPECT_TRUE(LikeMatch("hello world", "%lo wo%"));
  EXPECT_TRUE(LikeMatch("hello world", "hello world"));
  EXPECT_FALSE(LikeMatch("hello world", "world%"));
  EXPECT_FALSE(LikeMatch("hello world", "%xyz%"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  Value v(std::string("alpha42"));
  EXPECT_TRUE(MakePred("t", "c", CompareOp::kLike,
                       {Value(std::string("alpha%"))})
                  .Matches(v));
}

TEST(PredicateTest, ToStringRendersSql) {
  auto p = MakePred("t1", "id", CompareOp::kBetween,
                    {Value(int64_t{1}), Value(int64_t{9})});
  EXPECT_EQ(p.ToString(), "t1.id between 1 and 9");
  auto q = MakePred("t1", "id", CompareOp::kIn,
                    {Value(int64_t{1}), Value(int64_t{2})});
  EXPECT_EQ(q.ToString(), "t1.id in (1, 2)");
}

// ----------------------------------------------------------------- planner

TEST(PlannerTest, ChoosesIndexScanForSelectivePredicate) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.filters = {MakePred("t1", "id", CompareOp::kEq, {Value(int64_t{5})})};
  auto plan = db->Plan(q, Knobs{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->op, OpType::kIndexScan);
  EXPECT_EQ(plan.value()->index_column, "id");
}

TEST(PlannerTest, ChoosesSeqScanForUnselectivePredicate) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.filters = {MakePred("t1", "id", CompareOp::kGt, {Value(int64_t{5})})};
  auto plan = db->Plan(q, Knobs{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->op, OpType::kSeqScan);
}

TEST(PlannerTest, EnableIndexscanOffForcesSeqScan) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.filters = {MakePred("t1", "id", CompareOp::kEq, {Value(int64_t{5})})};
  Knobs k;
  k.enable_indexscan = false;
  auto plan = db->Plan(q, k);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->op, OpType::kSeqScan);
}

TEST(PlannerTest, JoinUsesHashByDefault) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1", "t2"};
  q.joins = {{{"t1", "id"}, {"t2", "t1_id"}}};
  auto plan = db->Plan(q, Knobs{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->op, OpType::kHashJoin);
}

TEST(PlannerTest, DisablingHashAndNestloopYieldsMergeJoinWithSorts) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1", "t2"};
  q.joins = {{{"t1", "id"}, {"t2", "t1_id"}}};
  Knobs k;
  k.enable_hashjoin = false;
  k.enable_nestloop = false;
  auto plan = db->Plan(q, k);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->op, OpType::kMergeJoin);
  // Each merge input must be sorted: Sort node or key-ordered index scan.
  for (size_t i = 0; i < 2; ++i) {
    const PlanNode* c = plan.value()->child(i);
    EXPECT_TRUE(c->op == OpType::kSort || c->op == OpType::kIndexScan)
        << OpTypeName(c->op);
  }
}

TEST(PlannerTest, AggregationAddsAggregateNode) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.group_by = {{"t1", "grp"}};
  Aggregate a;
  a.kind = Aggregate::Kind::kCount;
  q.aggregates = {a};
  auto plan = db->Plan(q, Knobs{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->op, OpType::kAggregate);
  EXPECT_NEAR(plan.value()->est_rows, 10.0, 5.0);
}

TEST(PlannerTest, OrderByAddsSortNode) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.order_by = {{{"t1", "val"}, false}};
  auto plan = db->Plan(q, Knobs{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->op, OpType::kSort);
}

TEST(PlannerTest, DisconnectedJoinGraphIsRejected) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1", "t2"};  // no join condition
  auto plan = db->Plan(q, Knobs{});
  EXPECT_FALSE(plan.ok());
}

TEST(PlannerTest, UnknownTableIsRejected) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"nope"};
  EXPECT_FALSE(db->Plan(q, Knobs{}).ok());
}

TEST(PlannerTest, EstimatesRowsForRangeFilter) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.filters = {MakePred("t1", "id", CompareOp::kLt, {Value(int64_t{100})})};
  auto plan = db->Plan(q, Knobs{});
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan.value()->est_rows, 100.0, 40.0);
}

TEST(PlannerTest, CostGrowsWithPlanSize) {
  auto db = MakeTestDb();
  QuerySpec scan;
  scan.tables = {"t1"};
  QuerySpec join;
  join.tables = {"t1", "t2"};
  join.joins = {{{"t1", "id"}, {"t2", "t1_id"}}};
  auto p1 = db->Plan(scan, Knobs{});
  auto p2 = db->Plan(join, Knobs{});
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_GT(p2.value()->est_cost, p1.value()->est_cost);
}

// ---------------------------------------------------------------- executor

TEST(ExecutorTest, SeqScanFilterMatchesBruteForce) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.filters = {MakePred("t1", "grp", CompareOp::kEq, {Value(int64_t{3})})};
  Environment env = DefaultEnv();
  Rng rng(1);
  QueryRunResult run;
  auto rel = db->ExecuteForResult(q, env, &rng, &run);
  ASSERT_TRUE(rel.ok());
  // 1000 rows, grp = i % 10 -> exactly 100 matches.
  EXPECT_EQ(rel.value().NumRows(), 100u);
}

TEST(ExecutorTest, IndexScanEqualsSeqScanResults) {
  auto db = MakeTestDb();
  // A point query on the indexed unique column: cheap enough that the
  // planner picks the index path on this small table.
  QuerySpec q;
  q.tables = {"t1"};
  q.filters = {MakePred("t1", "id", CompareOp::kEq, {Value(int64_t{123})})};
  Environment env = DefaultEnv();
  Rng rng(1);

  QueryRunResult run_idx;
  auto rel_idx = db->ExecuteForResult(q, env, &rng, &run_idx);
  ASSERT_TRUE(rel_idx.ok());
  ASSERT_EQ(run_idx.plan->op, OpType::kIndexScan);

  Environment no_idx = env;
  no_idx.knobs.enable_indexscan = false;
  QueryRunResult run_seq;
  auto rel_seq = db->ExecuteForResult(q, no_idx, &rng, &run_seq);
  ASSERT_TRUE(rel_seq.ok());
  ASSERT_EQ(run_seq.plan->op, OpType::kSeqScan);

  ASSERT_EQ(rel_idx.value().NumRows(), 1u);
  ASSERT_EQ(rel_seq.value().NumRows(), 1u);
  // Same row retrieved either way.
  EXPECT_EQ(std::get<int64_t>(rel_idx.value().rows[0][0]),
            std::get<int64_t>(rel_seq.value().rows[0][0]));
}

TEST(ExecutorTest, IndexRangeScanEqualsSeqScanWhenForced) {
  auto db = MakeTestDb();
  // Force the range through the index by making seq scan unattractive.
  QuerySpec q;
  q.tables = {"t1"};
  q.filters = {MakePred("t1", "id", CompareOp::kBetween,
                        {Value(int64_t{100}), Value(int64_t{149})})};
  Environment idx_env = DefaultEnv();
  idx_env.knobs.seq_page_cost = 1000.0;
  idx_env.knobs.cpu_tuple_cost = 10.0;
  idx_env.knobs.random_page_cost = 0.01;
  Rng rng(1);
  QueryRunResult run_idx;
  auto rel_idx = db->ExecuteForResult(q, idx_env, &rng, &run_idx);
  ASSERT_TRUE(rel_idx.ok());
  ASSERT_EQ(run_idx.plan->op, OpType::kIndexScan);
  EXPECT_EQ(rel_idx.value().NumRows(), 50u);

  Environment seq_env = DefaultEnv();
  seq_env.knobs.enable_indexscan = false;
  QueryRunResult run_seq;
  auto rel_seq = db->ExecuteForResult(q, seq_env, &rng, &run_seq);
  ASSERT_TRUE(rel_seq.ok());
  EXPECT_EQ(rel_seq.value().NumRows(), 50u);
}

TEST(ExecutorTest, JoinCardinalityMatchesBruteForce) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1", "t2"};
  q.joins = {{{"t1", "id"}, {"t2", "t1_id"}}};
  q.filters = {MakePred("t1", "grp", CompareOp::kEq, {Value(int64_t{0})})};
  Environment env = DefaultEnv();
  Rng rng(1);
  QueryRunResult run;
  auto rel = db->ExecuteForResult(q, env, &rng, &run);
  ASSERT_TRUE(rel.ok());

  // Brute force: count t2 rows whose t1_id % 10 == 0 (t1.grp == 0 rows are
  // exactly the ids divisible by 10 and every t2 row matches one t1 row).
  const Table* t2 = db->catalog()->GetTable("t2");
  size_t expected = 0;
  for (size_t r = 0; r < t2->num_rows(); ++r) {
    if (std::get<int64_t>(t2->GetValue(r, 1)) % 10 == 0) ++expected;
  }
  EXPECT_EQ(rel.value().NumRows(), expected);
}

TEST(ExecutorTest, AllJoinAlgorithmsAgree) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1", "t2"};
  q.joins = {{{"t1", "id"}, {"t2", "t1_id"}}};
  q.filters = {MakePred("t1", "grp", CompareOp::kEq, {Value(int64_t{4})})};
  Environment env = DefaultEnv();
  Rng rng(1);

  std::vector<size_t> counts;
  std::vector<OpType> seen;
  for (int mode = 0; mode < 3; ++mode) {
    Environment e = env;
    e.knobs.enable_hashjoin = (mode == 0);
    e.knobs.enable_mergejoin = (mode == 1);
    e.knobs.enable_nestloop = (mode == 2);
    if (mode != 0) e.knobs.enable_hashjoin = false;
    if (mode != 1) e.knobs.enable_mergejoin = false;
    if (mode != 2) e.knobs.enable_nestloop = false;
    QueryRunResult run;
    auto rel = db->ExecuteForResult(q, e, &rng, &run);
    ASSERT_TRUE(rel.ok());
    counts.push_back(rel.value().NumRows());
    seen.push_back(run.plan->op);
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[1], counts[2]);
  EXPECT_EQ(seen[0], OpType::kHashJoin);
  EXPECT_EQ(seen[1], OpType::kMergeJoin);
  EXPECT_EQ(seen[2], OpType::kNestedLoop);
}

TEST(ExecutorTest, SortOrdersRows) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.filters = {MakePred("t1", "grp", CompareOp::kEq, {Value(int64_t{1})})};
  q.order_by = {{{"t1", "val"}, false}};
  Environment env = DefaultEnv();
  Rng rng(1);
  QueryRunResult run;
  auto rel = db->ExecuteForResult(q, env, &rng, &run);
  ASSERT_TRUE(rel.ok());
  auto vi = rel.value().schema.FindColumn("t1.val");
  ASSERT_TRUE(vi.has_value());
  double prev = -HUGE_VAL;
  for (const auto& row : rel.value().rows) {
    double v = ValueToDouble(row[*vi]);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(ExecutorTest, SortDescending) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.filters = {MakePred("t1", "grp", CompareOp::kEq, {Value(int64_t{2})})};
  q.order_by = {{{"t1", "val"}, true}};
  Environment env = DefaultEnv();
  Rng rng(1);
  QueryRunResult run;
  auto rel = db->ExecuteForResult(q, env, &rng, &run);
  ASSERT_TRUE(rel.ok());
  auto vi = rel.value().schema.FindColumn("t1.val");
  double prev = HUGE_VAL;
  for (const auto& row : rel.value().rows) {
    double v = ValueToDouble(row[*vi]);
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST(ExecutorTest, GroupByCountsPerGroup) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.group_by = {{"t1", "grp"}};
  Aggregate a;
  a.kind = Aggregate::Kind::kCount;
  q.aggregates = {a};
  Environment env = DefaultEnv();
  Rng rng(1);
  QueryRunResult run;
  auto rel = db->ExecuteForResult(q, env, &rng, &run);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value().NumRows(), 10u);  // 10 groups
  auto ci = rel.value().schema.FindColumn("count(*)");
  ASSERT_TRUE(ci.has_value());
  for (const auto& row : rel.value().rows) {
    EXPECT_DOUBLE_EQ(ValueToDouble(row[*ci]), 100.0);
  }
}

TEST(ExecutorTest, GlobalAggregates) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  Aggregate cnt;
  cnt.kind = Aggregate::Kind::kCount;
  Aggregate mx;
  mx.kind = Aggregate::Kind::kMax;
  mx.column = {"t1", "id"};
  Aggregate mn;
  mn.kind = Aggregate::Kind::kMin;
  mn.column = {"t1", "id"};
  Aggregate av;
  av.kind = Aggregate::Kind::kAvg;
  av.column = {"t1", "id"};
  q.aggregates = {cnt, mx, mn, av};
  Environment env = DefaultEnv();
  Rng rng(1);
  QueryRunResult run;
  auto rel = db->ExecuteForResult(q, env, &rng, &run);
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel.value().NumRows(), 1u);
  const auto& row = rel.value().rows[0];
  EXPECT_DOUBLE_EQ(ValueToDouble(row[0]), 1000.0);
  EXPECT_DOUBLE_EQ(ValueToDouble(row[1]), 999.0);
  EXPECT_DOUBLE_EQ(ValueToDouble(row[2]), 0.0);
  EXPECT_NEAR(ValueToDouble(row[3]), 499.5, 1e-9);
}

TEST(ExecutorTest, DistinctDeduplicates) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.select_columns = {{"t1", "grp"}};
  q.distinct = true;
  Environment env = DefaultEnv();
  Rng rng(1);
  QueryRunResult run;
  auto rel = db->ExecuteForResult(q, env, &rng, &run);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value().NumRows(), 10u);
}

TEST(ExecutorTest, LimitTrimsResult) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.limit = 7;
  Environment env = DefaultEnv();
  Rng rng(1);
  QueryRunResult run;
  auto rel = db->ExecuteForResult(q, env, &rng, &run);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value().NumRows(), 7u);
}

TEST(ExecutorTest, WorkCountsPopulated) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1", "t2"};
  q.joins = {{{"t1", "id"}, {"t2", "t1_id"}}};
  q.order_by = {{{"t2", "amount"}, false}};
  Environment env = DefaultEnv();
  Rng rng(1);
  auto run = db->Run(q, env, &rng);
  ASSERT_TRUE(run.ok());
  run.value().plan->VisitConst([](const PlanNode* node) {
    // Every operator must have recorded some work and a positive latency.
    double total_work = node->work.seq_pages + node->work.rand_pages +
                        node->work.tuples + node->work.index_tuples +
                        node->work.op_units;
    EXPECT_GT(total_work, 0.0) << OpTypeName(node->op);
    EXPECT_GT(node->actual_ms, 0.0);
  });
}

TEST(ExecutorTest, TinyWorkMemCausesSortSpill) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  q.order_by = {{{"t1", "val"}, false}};
  Environment env = DefaultEnv();
  env.knobs.work_mem_kb = 1.0;  // force spill
  Rng rng(1);
  auto run = db->Run(q, env, &rng);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.value().plan->op, OpType::kSort);
  EXPECT_GT(run.value().plan->work.seq_pages, 0.0);

  Environment big = DefaultEnv();
  big.knobs.work_mem_kb = 1 << 20;
  db->ClearExecutionCache();
  auto run2 = db->Run(q, big, &rng);
  ASSERT_TRUE(run2.ok());
  EXPECT_DOUBLE_EQ(run2.value().plan->work.seq_pages, 0.0);
}

// ----------------------------------------------------------- cost simulator

TEST(CostSimTest, CoefficientsPositive) {
  Environment env = DefaultEnv();
  CostSimulator sim(env, 100.0);
  for (OpType op : AllOpTypes()) {
    CostCoefficients c = sim.CoefficientsFor(op);
    EXPECT_GT(c.cs, 0.0);
    EXPECT_GT(c.cr, 0.0);
    EXPECT_GT(c.ct, 0.0);
    EXPECT_GT(c.ci, 0.0);
    EXPECT_GE(c.co, 0.0);
  }
}

TEST(CostSimTest, LargerBuffersCheapenIo) {
  Environment small = DefaultEnv();
  small.knobs.shared_buffers_mb = 8.0;
  Environment big = DefaultEnv();
  big.knobs.shared_buffers_mb = 4096.0;
  CostSimulator sim_small(small, 500.0), sim_big(big, 500.0);
  EXPECT_GT(sim_small.CoefficientsFor(OpType::kSeqScan).cs,
            sim_big.CoefficientsFor(OpType::kSeqScan).cs);
  EXPECT_GT(sim_small.CoefficientsFor(OpType::kSeqScan).cr,
            sim_big.CoefficientsFor(OpType::kSeqScan).cr);
}

TEST(CostSimTest, JitSpeedsTuplesButAddsPerOperatorSetup) {
  Environment off = DefaultEnv();
  Environment on = DefaultEnv();
  on.knobs.jit = true;
  CostSimulator sim_off(off, 100.0), sim_on(on, 100.0);
  EXPECT_LT(sim_on.CoefficientsFor(OpType::kSort).ct,
            sim_off.CoefficientsFor(OpType::kSort).ct);
  // JIT setup is charged per operator (visible to snapshots): an empty
  // operator costs more with JIT on.
  WorkCounts none;
  EXPECT_GT(sim_on.ExpectedOperatorMs(OpType::kSeqScan, none),
            sim_off.ExpectedOperatorMs(OpType::kSeqScan, none) + 0.1);
  // For a large CPU-heavy operator JIT pays off.
  WorkCounts big;
  big.tuples = 1e6;
  big.op_units = 1e6;
  EXPECT_LT(sim_on.ExpectedOperatorMs(OpType::kSort, big),
            sim_off.ExpectedOperatorMs(OpType::kSort, big));
}

TEST(CostSimTest, FasterHardwareIsCheaper) {
  Environment h1 = DefaultEnv();
  Environment h2 = DefaultEnv();
  h2.hardware = HardwareProfile::H2();
  CostSimulator sim1(h1, 100.0), sim2(h2, 100.0);
  WorkCounts w;
  w.seq_pages = 100;
  w.tuples = 10000;
  EXPECT_GT(sim1.ExpectedOperatorMs(OpType::kSeqScan, w),
            sim2.ExpectedOperatorMs(OpType::kSeqScan, w));
}

TEST(CostSimTest, HddRandomIoIsExpensive) {
  Environment ssd = DefaultEnv();
  Environment hdd = DefaultEnv();
  hdd.hardware = HardwareProfile::Hdd();
  CostSimulator s_ssd(ssd, 1000.0), s_hdd(hdd, 1000.0);
  EXPECT_GT(s_hdd.CoefficientsFor(OpType::kIndexScan).cr,
            10.0 * s_ssd.CoefficientsFor(OpType::kIndexScan).cr);
}

TEST(CostSimTest, ExpectedMsLinearInCounts) {
  CostSimulator sim(DefaultEnv(), 100.0);
  WorkCounts w1;
  w1.tuples = 1000;
  WorkCounts w2;
  w2.tuples = 2000;
  double m1 = sim.ExpectedOperatorMs(OpType::kSeqScan, w1);
  double m2 = sim.ExpectedOperatorMs(OpType::kSeqScan, w2);
  EXPECT_GT(m2, m1);
  // Linear up to the constant startup term.
  double startup = sim.ExpectedOperatorMs(OpType::kSeqScan, WorkCounts{});
  EXPECT_NEAR(m2 - startup, 2.0 * (m1 - startup), 1e-9);
}

TEST(CostSimTest, NoiseIsDeterministicPerSeed) {
  CostSimulator sim(DefaultEnv(), 100.0);
  WorkCounts w;
  w.tuples = 5000;
  Rng a(7), b(7);
  EXPECT_DOUBLE_EQ(sim.SampleOperatorMs(OpType::kSort, w, &a),
                   sim.SampleOperatorMs(OpType::kSort, w, &b));
}

TEST(CostSimTest, NoiseCentersOnExpectation) {
  CostSimulator sim(DefaultEnv(), 100.0);
  WorkCounts w;
  w.tuples = 5000;
  w.op_units = 4000;
  double expected = sim.ExpectedOperatorMs(OpType::kSort, w);
  Rng rng(11);
  double acc = 0.0;
  int n = 4000;
  for (int i = 0; i < n; ++i) acc += sim.SampleOperatorMs(OpType::kSort, w, &rng);
  EXPECT_NEAR(acc / n, expected, expected * 0.01);
}

// ---------------------------------------------------------------- database

TEST(DatabaseTest, RunFillsPlanAndTotal) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  Environment env = DefaultEnv();
  Rng rng(3);
  auto run = db->Run(q, env, &rng);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run.value().total_ms, 0.0);
  EXPECT_EQ(run.value().result_rows, 1000u);
  EXPECT_GE(run.value().total_ms, run.value().plan->TotalActualMs());
}

TEST(DatabaseTest, ExecutionCacheReusedAcrossEnvironments) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1", "t2"};
  q.joins = {{{"t1", "id"}, {"t2", "t1_id"}}};
  Rng rng(3);

  Environment e1 = DefaultEnv();
  e1.knobs.shared_buffers_mb = 64;
  auto r1 = db->Run(q, e1, &rng);
  ASSERT_TRUE(r1.ok());
  size_t cache_after_first = db->execution_cache_size();

  // Same plan shape under a different buffer setting: no new cache entry.
  Environment e2 = DefaultEnv();
  e2.knobs.shared_buffers_mb = 1024;
  auto r2 = db->Run(q, e2, &rng);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(db->execution_cache_size(), cache_after_first);

  // Same work counts, different environment -> different price.
  EXPECT_NE(r1.value().total_ms, r2.value().total_ms);
  EXPECT_DOUBLE_EQ(r1.value().plan->work.tuples, r2.value().plan->work.tuples);
}

TEST(DatabaseTest, EnvironmentShiftsLatencyMaterially) {
  auto db = MakeTestDb();
  // A short point query: exactly the regime where the paper's Figure 1
  // observes multi-x latency differences across knob configurations
  // (JIT setup and hardware dominate when per-tuple work is tiny).
  QuerySpec q;
  q.tables = {"t1"};
  q.filters = {MakePred("t1", "id", CompareOp::kEq, {Value(int64_t{7})})};

  Environment cheap = DefaultEnv();
  cheap.hardware = HardwareProfile::H2();
  cheap.knobs.jit = false;
  Environment costly = DefaultEnv();
  costly.hardware = HardwareProfile::Hdd();
  costly.knobs.shared_buffers_mb = 4;
  costly.knobs.jit = true;  // JIT compile overhead dominates a short query

  auto r_cheap = db->Run(q, cheap, nullptr);
  auto r_costly = db->Run(q, costly, nullptr);
  ASSERT_TRUE(r_cheap.ok() && r_costly.ok());
  EXPECT_GT(r_costly.value().total_ms, 2.0 * r_cheap.value().total_ms);
}

TEST(DatabaseTest, DeterministicWithSameSeed) {
  auto db1 = MakeTestDb();
  auto db2 = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1"};
  Environment env = DefaultEnv();
  Rng a(42), b(42);
  auto r1 = db1->Run(q, env, &a);
  auto r2 = db2->Run(q, env, &b);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1.value().total_ms, r2.value().total_ms);
}

TEST(DatabaseTest, EnvironmentSamplerProducesVariety) {
  auto envs = EnvironmentSampler::Sample(20, HardwareProfile::H1(), 777);
  ASSERT_EQ(envs.size(), 20u);
  std::set<std::string> distinct;
  for (const auto& e : envs) distinct.insert(e.knobs.ToString());
  EXPECT_GT(distinct.size(), 15u);
  // Env 0 is the default configuration.
  EXPECT_EQ(envs[0].knobs.ToString(), Knobs{}.ToString());
  // Every environment keeps at least one join algorithm enabled.
  for (const auto& e : envs) {
    EXPECT_TRUE(e.knobs.enable_hashjoin || e.knobs.enable_mergejoin ||
                e.knobs.enable_nestloop);
  }
}

TEST(PlanTest, FingerprintDistinguishesPlans) {
  auto db = MakeTestDb();
  QuerySpec q1;
  q1.tables = {"t1"};
  QuerySpec q2;
  q2.tables = {"t1"};
  q2.filters = {MakePred("t1", "grp", CompareOp::kEq, {Value(int64_t{1})})};
  auto p1 = db->Plan(q1, Knobs{});
  auto p2 = db->Plan(q2, Knobs{});
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_NE(p1.value()->Fingerprint(), p2.value()->Fingerprint());
  EXPECT_EQ(p1.value()->Fingerprint(), p1.value()->Clone()->Fingerprint());
}

TEST(PlanTest, CloneIsDeepAndComplete) {
  auto db = MakeTestDb();
  QuerySpec q;
  q.tables = {"t1", "t2"};
  q.joins = {{{"t1", "id"}, {"t2", "t1_id"}}};
  Environment env = DefaultEnv();
  Rng rng(3);
  auto run = db->Run(q, env, &rng);
  ASSERT_TRUE(run.ok());
  auto clone = run.value().plan->Clone();
  EXPECT_EQ(clone->CountNodes(), run.value().plan->CountNodes());
  EXPECT_DOUBLE_EQ(clone->TotalActualMs(), run.value().plan->TotalActualMs());
  // Mutating the clone must not affect the original.
  clone->actual_ms += 100.0;
  EXPECT_NE(clone->actual_ms, run.value().plan->actual_ms);
}

}  // namespace
}  // namespace qcfe
