/// Tests for src/models: the PG baseline, QPPNet and MSCN learn on a real
/// workload corpus; predictions beat trivial baselines; warm-start training,
/// convergence traces and operator views behave.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "models/cost_model.h"
#include "models/mscn.h"
#include "models/pg_cost_model.h"
#include "models/qppnet.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/benchmark.h"
#include "workload/collector.h"

namespace qcfe {
namespace {

/// Shared corpus: sysbench at a small scale, 3 environments, 360 queries.
class ModelsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto bench = MakeBenchmark("sysbench");
    db_ = (*bench)->BuildDatabase(0.05, 31).release();
    envs_ = new std::vector<Environment>(
        EnvironmentSampler::Sample(3, HardwareProfile::H1(), 41));
    QueryCollector collector(db_, envs_);
    auto set = collector.Collect((*bench)->Templates(), 360, 51);
    ASSERT_TRUE(set.ok());
    corpus_ = new LabeledQuerySet(std::move(set.value()));
    featurizer_ = new BaseFeaturizer(db_->catalog());

    auto split = SplitIndices(corpus_->queries.size(), 0.8, 61);
    train_ = new std::vector<PlanSample>();
    test_ = new std::vector<PlanSample>();
    for (size_t i : split.train) train_->push_back(Sample(i));
    for (size_t i : split.test) test_->push_back(Sample(i));
  }

  static PlanSample Sample(size_t i) {
    const LabeledQuery& q = corpus_->queries[i];
    return PlanSample{q.plan.get(), q.env_id, q.total_ms};
  }

  static MetricSummary Evaluate(const CostModel& model,
                                const std::vector<PlanSample>& samples) {
    std::vector<double> actual, predicted;
    for (const auto& s : samples) {
      auto p = model.PredictMs(*s.plan, s.env_id);
      EXPECT_TRUE(p.ok()) << p.status().ToString();
      actual.push_back(s.label_ms);
      predicted.push_back(p.ok() ? *p : 0.0);
    }
    return Summarize(actual, predicted);
  }

  static Database* db_;
  static std::vector<Environment>* envs_;
  static LabeledQuerySet* corpus_;
  static BaseFeaturizer* featurizer_;
  static std::vector<PlanSample>* train_;
  static std::vector<PlanSample>* test_;
};

Database* ModelsTest::db_ = nullptr;
std::vector<Environment>* ModelsTest::envs_ = nullptr;
LabeledQuerySet* ModelsTest::corpus_ = nullptr;
BaseFeaturizer* ModelsTest::featurizer_ = nullptr;
std::vector<PlanSample>* ModelsTest::train_ = nullptr;
std::vector<PlanSample>* ModelsTest::test_ = nullptr;

TEST_F(ModelsTest, PgBaselinePredictsWithoutTraining) {
  PgCostModel pg;
  TrainStats stats;
  ASSERT_TRUE(pg.Train(*train_, TrainConfig{}, &stats).ok());
  EXPECT_EQ(stats.train_seconds, 0.0);
  MetricSummary m = Evaluate(pg, *test_);
  // Environment-oblivious analytical estimate: finite but coarse.
  EXPECT_GT(m.mean_qerror, 1.0);
  EXPECT_EQ(m.count, test_->size());
  EXPECT_EQ(pg.featurizer(), nullptr);
  EXPECT_FALSE(pg.OperatorView(OpType::kSeqScan, {}).ok());
}

TEST_F(ModelsTest, QppNetLearnsTheWorkload) {
  QppNet model(featurizer_, QppNetConfig{}, 71);
  EXPECT_FALSE(model.PredictMs(*(*test_)[0].plan, 0).ok());  // untrained
  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.batch_size = 32;
  cfg.seed = 5;
  TrainStats stats;
  ASSERT_TRUE(model.Train(*train_, cfg, &stats).ok());
  EXPECT_GT(stats.train_seconds, 0.0);
  ASSERT_EQ(stats.loss_curve.size(), 40u);
  // Loss decreases substantially from the first epochs.
  EXPECT_LT(stats.loss_curve.back(), 0.5 * stats.loss_curve.front());

  MetricSummary m = Evaluate(model, *test_);
  EXPECT_LT(m.mean_qerror, 5.0);
  EXPECT_GT(m.pearson, 0.5);

  // Learned model beats the analytical baseline on this corpus.
  PgCostModel pg;
  MetricSummary pg_m = Evaluate(pg, *test_);
  EXPECT_LT(m.mean_qerror, pg_m.mean_qerror);
}

TEST_F(ModelsTest, QppNetWarmStartImproves) {
  QppNet model(featurizer_, QppNetConfig{}, 73);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.seed = 5;
  TrainStats first;
  ASSERT_TRUE(model.Train(*train_, cfg, &first).ok());
  MetricSummary before = Evaluate(model, *test_);
  TrainStats second;
  cfg.epochs = 30;
  ASSERT_TRUE(model.Train(*train_, cfg, &second).ok());
  MetricSummary after = Evaluate(model, *test_);
  // Warm-started continuation must not be worse by much and typically helps.
  EXPECT_LT(after.mean_qerror, before.mean_qerror * 1.2);
  EXPECT_LT(second.loss_curve.back(), first.loss_curve.front());
}

TEST_F(ModelsTest, QppNetEvalCurveRecordsConvergence) {
  QppNet model(featurizer_, QppNetConfig{}, 75);
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.eval_every = 4;
  cfg.eval_set = *test_;
  TrainStats stats;
  ASSERT_TRUE(model.Train(*train_, cfg, &stats).ok());
  ASSERT_EQ(stats.eval_curve.size(), 3u);
  EXPECT_EQ(stats.eval_curve[0].first, 4);
  EXPECT_EQ(stats.eval_curve[2].first, 12);
  for (const auto& [epoch, qe] : stats.eval_curve) EXPECT_GE(qe, 1.0);
}

TEST_F(ModelsTest, QppNetDeterministicGivenSeeds) {
  QppNet a(featurizer_, QppNetConfig{}, 77);
  QppNet b(featurizer_, QppNetConfig{}, 77);
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.seed = 9;
  ASSERT_TRUE(a.Train(*train_, cfg, nullptr).ok());
  ASSERT_TRUE(b.Train(*train_, cfg, nullptr).ok());
  auto pa = a.PredictMs(*(*test_)[0].plan, (*test_)[0].env_id);
  auto pb = b.PredictMs(*(*test_)[0].plan, (*test_)[0].env_id);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_DOUBLE_EQ(*pa, *pb);
}

TEST_F(ModelsTest, QppNetOperatorViewMatchesSingleNodePlans) {
  QppNet model(featurizer_, QppNetConfig{}, 79);
  TrainConfig cfg;
  cfg.epochs = 15;
  ASSERT_TRUE(model.Train(*train_, cfg, nullptr).ok());

  // Context restricted to single-node plans of the target type so the mean
  // child context is exactly zero (leaf operators have no children).
  std::vector<PlanSample> leaf_context;
  for (const auto& s : *train_) {
    if (s.plan->CountNodes() == 1 && s.plan->op == OpType::kIndexScan) {
      leaf_context.push_back(s);
    }
  }
  ASSERT_FALSE(leaf_context.empty());
  auto view = model.OperatorView(OpType::kIndexScan, leaf_context);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  for (size_t i = 0; i < std::min<size_t>(leaf_context.size(), 5); ++i) {
    const PlanSample& s = leaf_context[i];
    std::vector<double> raw = featurizer_->Encode(*s.plan, 0, s.env_id);
    Matrix x(1, raw.size());
    x.SetRow(0, raw);
    double view_scaled = view->Predict(x).At(0, 0);
    double model_ms = *model.PredictMs(*s.plan, s.env_id);
    double model_scaled = model.label_scaler()->TransformOne(model_ms);
    EXPECT_NEAR(view_scaled, model_scaled, 1e-6);
  }
}

TEST_F(ModelsTest, MscnLearnsTheWorkload) {
  Mscn model(db_->catalog(), featurizer_, MscnConfig{}, 81);
  EXPECT_FALSE(model.PredictMs(*(*test_)[0].plan, 0).ok());  // untrained
  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.batch_size = 32;
  TrainStats stats;
  ASSERT_TRUE(model.Train(*train_, cfg, &stats).ok());
  EXPECT_GT(stats.train_seconds, 0.0);
  EXPECT_LT(stats.loss_curve.back(), stats.loss_curve.front());
  MetricSummary m = Evaluate(model, *test_);
  EXPECT_LT(m.mean_qerror, 5.0);
  EXPECT_GT(m.pearson, 0.5);
}

TEST_F(ModelsTest, MscnOperatorViewRespondsToFeatures) {
  Mscn model(db_->catalog(), featurizer_, MscnConfig{}, 83);
  TrainConfig cfg;
  cfg.epochs = 20;
  ASSERT_TRUE(model.Train(*train_, cfg, nullptr).ok());
  std::vector<PlanSample> ctx(train_->begin(),
                              train_->begin() + std::min<size_t>(20, train_->size()));
  auto view = model.OperatorView(OpType::kSeqScan, ctx);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->in_dim(), model.op_dim());
  EXPECT_EQ(view->out_dim(), 1u);

  // The view must produce finite output and depend on cardinality features.
  std::vector<double> raw =
      featurizer_->Encode(*(*train_)[0].plan, 0, (*train_)[0].env_id);
  Matrix x(1, raw.size());
  x.SetRow(0, raw);
  double y0 = view->Predict(x).At(0, 0);
  EXPECT_TRUE(std::isfinite(y0));
}

TEST_F(ModelsTest, SubtreeLatencySumsOperatorLatencies) {
  const PlanNode* plan = (*train_)[0].plan;
  double total = 0.0;
  plan->VisitConst([&](const PlanNode* n) { total += n->actual_ms; });
  EXPECT_DOUBLE_EQ(SubtreeLatencyMs(*plan), total);
}

}  // namespace
}  // namespace qcfe
