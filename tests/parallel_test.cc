/// Parity tests for the thread-pool parallelism layer: every parallel path
/// (labeled-query collection, snapshot fitting, feature reduction, pipeline
/// Fit, batched serving) must produce bit-identical results at any thread
/// count. "Bit-identical" is meant literally — EXPECT_EQ on doubles — since
/// all parallel loops partition work statically, reduce in index order and
/// draw per-task Rng::Split streams.
///
/// Wall-clock audit: nothing in this suite depends on real time. The
/// `collection_ms` values compared below are SIMULATED label cost — the sum
/// of the cost simulator's per-query latencies, a deterministic function of
/// (templates, seed, environment) — not measured wall time, which is why
/// exact equality across thread counts is a valid assertion. Timing-derived
/// quantities (TrainStats::train_seconds and friends) are deliberately never
/// asserted on here; elapsed-time behaviour is tested exactly via the
/// injected Clock in util_test (WallTimerFollowsInjectedClock).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/feature_reduction.h"
#include "core/pipeline.h"
#include "core/qcfe.h"
#include "harness/context.h"
#include "harness/evaluate.h"
#include "models/registry.h"
#include "nn/kernels.h"
#include "sql/data_abstract.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace qcfe {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
    opt.corpus_size = 160;
    opt.num_envs = 3;
    auto ctx = BenchmarkContext::Create(opt);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    ctx_ = ctx.value().release();
    ctx_->Split(160, &train_, &test_);
    pool_ = new ThreadPool(4);
  }

  static void TearDownTestSuite() {
    delete pool_;
    pool_ = nullptr;
    delete ctx_;
    ctx_ = nullptr;
  }

  /// A small estimator trained through the registry (serial), used by the
  /// reduction and serving parity tests.
  static std::unique_ptr<CostModel> TrainedModel(const std::string& name,
                                                 uint64_t seed) {
    BaseFeaturizer* featurizer = new BaseFeaturizer(ctx_->db->catalog());
    featurizers_.emplace_back(featurizer);
    auto model = EstimatorRegistry::Global().Create(
        name, {ctx_->db->catalog(), featurizer, seed});
    EXPECT_TRUE(model.ok());
    TrainConfig cfg;
    cfg.epochs = 4;
    EXPECT_TRUE((*model)->Train(train_, cfg, nullptr).ok());
    return std::move(model.value());
  }

  static BenchmarkContext* ctx_;
  static std::vector<PlanSample> train_, test_;
  static ThreadPool* pool_;
  static std::vector<std::unique_ptr<BaseFeaturizer>> featurizers_;
};

BenchmarkContext* ParallelTest::ctx_ = nullptr;
std::vector<PlanSample> ParallelTest::train_;
std::vector<PlanSample> ParallelTest::test_;
ThreadPool* ParallelTest::pool_ = nullptr;
std::vector<std::unique_ptr<BaseFeaturizer>> ParallelTest::featurizers_;

// ------------------------------------------------------------- collection

TEST_F(ParallelTest, CollectIsBitIdenticalAcrossThreadCounts) {
  QueryCollector collector(ctx_->db.get(), &ctx_->envs);
  auto serial = collector.Collect(ctx_->templates, 60, 991, nullptr);
  auto parallel = collector.Collect(ctx_->templates, 60, 991, pool_);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->queries.size(), parallel->queries.size());
  EXPECT_EQ(serial->collection_ms, parallel->collection_ms);
  for (size_t i = 0; i < serial->queries.size(); ++i) {
    const LabeledQuery& a = serial->queries[i];
    const LabeledQuery& b = parallel->queries[i];
    EXPECT_EQ(a.template_index, b.template_index);
    EXPECT_EQ(a.env_id, b.env_id);
    EXPECT_EQ(a.total_ms, b.total_ms);
    EXPECT_EQ(a.plan->Fingerprint(), b.plan->Fingerprint());
  }
}

TEST_F(ParallelTest, RunSpecsGridMatchesPerEnvironmentRuns) {
  DataAbstract abstract(ctx_->db->catalog());
  Rng rng(17);
  std::vector<QuerySpec> specs;
  for (const auto& t : ctx_->templates) {
    auto spec = t.Instantiate(abstract, &rng);
    ASSERT_TRUE(spec.ok());
    specs.push_back(*spec);
  }
  QueryCollector collector(ctx_->db.get(), &ctx_->envs);
  const uint64_t seed = 733;
  auto grid_serial = collector.RunSpecsGrid(specs, ctx_->envs, seed, nullptr);
  auto grid_parallel = collector.RunSpecsGrid(specs, ctx_->envs, seed, pool_);
  ASSERT_TRUE(grid_serial.ok());
  ASSERT_TRUE(grid_parallel.ok());
  ASSERT_EQ(grid_serial->size(), ctx_->envs.size());
  for (size_t e = 0; e < ctx_->envs.size(); ++e) {
    const Environment& env = ctx_->envs[e];
    // Each grid slice equals the historical single-environment entry point
    // under the derived seed.
    uint64_t env_seed =
        seed ^ (0x9E37ULL * (static_cast<uint64_t>(env.id) + 1));
    auto single = collector.RunSpecsUnderEnv(specs, env, env_seed, nullptr);
    ASSERT_TRUE(single.ok());
    for (const auto* set : {&(*grid_serial)[e], &(*grid_parallel)[e]}) {
      ASSERT_EQ(set->queries.size(), single->queries.size());
      EXPECT_EQ(set->collection_ms, single->collection_ms);
      for (size_t i = 0; i < set->queries.size(); ++i) {
        EXPECT_EQ(set->queries[i].total_ms, single->queries[i].total_ms);
      }
    }
  }
}

// -------------------------------------------------------------- snapshots

TEST_F(ParallelTest, SnapshotsAreBitIdenticalAcrossThreadCounts) {
  SnapshotBuilder builder(ctx_->db.get(), &ctx_->templates);
  SnapshotStore serial_store, parallel_store;
  double serial_ms = 0.0, parallel_ms = 0.0;
  size_t nq = 0;
  ASSERT_TRUE(builder
                  .ComputeSnapshots(ctx_->envs, /*from_templates=*/true,
                                    /*scale=*/1, /*seed=*/5, &serial_store,
                                    &serial_ms, &nq, nullptr,
                                    SnapshotGranularity::kOperator, nullptr)
                  .ok());
  ASSERT_TRUE(builder
                  .ComputeSnapshots(ctx_->envs, /*from_templates=*/true,
                                    /*scale=*/1, /*seed=*/5, &parallel_store,
                                    &parallel_ms, &nq, nullptr,
                                    SnapshotGranularity::kOperator, pool_)
                  .ok());
  EXPECT_EQ(serial_ms, parallel_ms);
  ASSERT_EQ(serial_store.size(), parallel_store.size());
  for (const auto& env : ctx_->envs) {
    const FeatureSnapshot* a = serial_store.Get(env.id);
    const FeatureSnapshot* b = parallel_store.Get(env.id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    for (OpType op : AllOpTypes()) {
      const OperatorSnapshot& sa = a->Get(op);
      const OperatorSnapshot& sb = b->Get(op);
      EXPECT_EQ(sa.num_observations, sb.num_observations);
      for (size_t c = 0; c < kSnapshotWidth; ++c) {
        EXPECT_EQ(sa.coeffs[c], sb.coeffs[c]);
      }
    }
  }
}

// -------------------------------------------------------------- reduction

TEST_F(ParallelTest, DiffPropReductionIsBitIdenticalAcrossThreadCounts) {
  std::unique_ptr<CostModel> model = TrainedModel("qppnet", 21);
  ReductionConfig cfg;
  cfg.algorithm = ReductionAlgorithm::kDiffProp;
  cfg.num_references = 24;
  auto serial = ReduceFeatures(*model, train_, cfg, nullptr);
  auto parallel = ReduceFeatures(*model, train_, cfg, pool_);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->per_op.size(), parallel->per_op.size());
  for (const auto& [op, a] : serial->per_op) {
    const OpReductionResult& b = parallel->per_op.at(op);
    EXPECT_EQ(a.kept, b.kept);
    ASSERT_EQ(a.scores.size(), b.scores.size());
    for (size_t k = 0; k < a.scores.size(); ++k) {
      EXPECT_EQ(a.scores[k], b.scores[k]);
    }
  }
}

TEST_F(ParallelTest, GreedyReductionIsBitIdenticalAcrossThreadCounts) {
  std::unique_ptr<CostModel> model = TrainedModel("qppnet", 23);
  ReductionConfig cfg;
  cfg.algorithm = ReductionAlgorithm::kGreedy;
  cfg.greedy_max_rows = 60;
  cfg.max_rows_per_op = 120;
  auto serial = ReduceFeatures(*model, train_, cfg, nullptr);
  auto parallel = ReduceFeatures(*model, train_, cfg, pool_);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  for (const auto& [op, a] : serial->per_op) {
    EXPECT_EQ(a.kept, parallel->per_op.at(op).kept);
  }
}

// --------------------------------------------------------------- training

TEST_F(ParallelTest, TrainingIsBitIdenticalAcrossThreadCounts) {
  // Chunk-parallel gradient training must produce the same model at every
  // worker count: the chunk partition is fixed by (batch_size, chunk_size)
  // and per-chunk sinks merge in chunk index order, so 1, 2 and 4 threads
  // follow the same arithmetic. Loss curves (satellite of the per-epoch
  // Split-keyed shuffles) and predictions are compared bitwise.
  ThreadPool pool2(2);
  for (const char* name : {"qppnet", "mscn"}) {
    ThreadPool* pools[] = {nullptr, &pool2, pool_};
    std::vector<std::unique_ptr<CostModel>> models;
    std::vector<TrainStats> stats(3);
    for (size_t t = 0; t < 3; ++t) {
      BaseFeaturizer* featurizer = new BaseFeaturizer(ctx_->db->catalog());
      featurizers_.emplace_back(featurizer);
      auto model = EstimatorRegistry::Global().Create(
          name, {ctx_->db->catalog(), featurizer, 77});
      ASSERT_TRUE(model.ok()) << name;
      (*model)->set_thread_pool(pools[t]);
      TrainConfig cfg;
      cfg.epochs = 5;
      ASSERT_TRUE((*model)->Train(train_, cfg, &stats[t]).ok()) << name;
      models.push_back(std::move(model.value()));
    }
    for (size_t t = 1; t < 3; ++t) {
      ASSERT_EQ(stats[0].loss_curve.size(), stats[t].loss_curve.size());
      for (size_t e = 0; e < stats[0].loss_curve.size(); ++e) {
        EXPECT_EQ(stats[0].loss_curve[e], stats[t].loss_curve[e])
            << name << " epoch " << e << " at thread config " << t;
      }
    }
    auto serial = models[0]->PredictBatchMs(test_, nullptr);
    ASSERT_TRUE(serial.ok()) << name;
    for (size_t t = 1; t < 3; ++t) {
      auto parallel = models[t]->PredictBatchMs(test_, nullptr);
      ASSERT_TRUE(parallel.ok()) << name;
      ASSERT_EQ(serial->size(), parallel->size());
      for (size_t i = 0; i < serial->size(); ++i) {
        EXPECT_EQ((*serial)[i], (*parallel)[i])
            << name << " sample " << i << " at thread config " << t;
      }
    }
  }
}

TEST_F(ParallelTest, WarmStartRetrainingKeepsThreadCountParity) {
  // Transfer-style retraining (a second Train on the same model) must stay
  // bit-identical too: epoch orders come from Split streams keyed by epoch
  // index within each Train call, not from a generator whose state depends
  // on how much work ran before.
  ThreadPool pool2(2);
  ThreadPool* pools[] = {nullptr, &pool2, pool_};
  std::vector<std::unique_ptr<CostModel>> models;
  for (size_t t = 0; t < 3; ++t) {
    BaseFeaturizer* featurizer = new BaseFeaturizer(ctx_->db->catalog());
    featurizers_.emplace_back(featurizer);
    auto model = EstimatorRegistry::Global().Create(
        "qppnet", {ctx_->db->catalog(), featurizer, 79});
    ASSERT_TRUE(model.ok());
    (*model)->set_thread_pool(pools[t]);
    TrainConfig cfg;
    cfg.epochs = 3;
    ASSERT_TRUE((*model)->Train(train_, cfg, nullptr).ok());
    cfg.seed = 5;
    cfg.epochs = 2;
    ASSERT_TRUE((*model)->Train(train_, cfg, nullptr).ok());
    models.push_back(std::move(model.value()));
  }
  auto serial = models[0]->PredictBatchMs(test_, nullptr);
  ASSERT_TRUE(serial.ok());
  for (size_t t = 1; t < 3; ++t) {
    auto parallel = models[t]->PredictBatchMs(test_, nullptr);
    ASSERT_TRUE(parallel.ok());
    for (size_t i = 0; i < serial->size(); ++i) {
      EXPECT_EQ((*serial)[i], (*parallel)[i]) << " sample " << i;
    }
  }
}

// ---------------------------------------------------------------- serving

TEST_F(ParallelTest, ShardedBatchedServingMatchesScalarLoop) {
  for (const char* name : {"qppnet", "mscn"}) {
    std::unique_ptr<CostModel> model = TrainedModel(name, 31);
    std::vector<PlanSample> batch;
    for (size_t i = 0; i < 3 * test_.size(); ++i) {
      batch.push_back(test_[i % test_.size()]);  // repeats exercise dedup
    }
    auto serial = model->PredictBatchMs(batch, nullptr);
    auto parallel = model->PredictBatchMs(batch, pool_);
    ASSERT_TRUE(serial.ok()) << name;
    ASSERT_TRUE(parallel.ok()) << name;
    ASSERT_EQ(serial->size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ((*serial)[i], (*parallel)[i]) << name << " sample " << i;
      auto scalar = model->PredictMs(*batch[i].plan, batch[i].env_id);
      ASSERT_TRUE(scalar.ok());
      EXPECT_EQ((*serial)[i], *scalar) << name << " sample " << i;
    }
  }
}

// ----------------------------------------------------------- kernel modes

TEST_F(ParallelTest, KernelDispatchKeepsModelsBitIdentical) {
  // The register-blocked/fused kernel suite must be invisible to results:
  // training, serving and reduction under the production dispatch (kAuto)
  // must match the historical reference loops (kReference — the pre-kernel
  // code paths, replayed) bit for bit. The reference loops are scalar by
  // definition, so the comparison runs under the scalar ISA tier; the SIMD
  // tiers are parity-gated separately (kernels_test, bench_micro --smoke).
  kernels::ScopedKernelIsa tier(kernels::KernelIsa::kScalar);
  for (const char* name : {"qppnet", "mscn"}) {
    std::vector<TrainStats> stats(2);
    std::vector<std::unique_ptr<CostModel>> models;
    for (kernels::KernelMode mode :
         {kernels::KernelMode::kReference, kernels::KernelMode::kAuto}) {
      kernels::ScopedKernelMode pin(mode);
      BaseFeaturizer* featurizer = new BaseFeaturizer(ctx_->db->catalog());
      featurizers_.emplace_back(featurizer);
      auto model = EstimatorRegistry::Global().Create(
          name, {ctx_->db->catalog(), featurizer, 83});
      ASSERT_TRUE(model.ok()) << name;
      TrainConfig cfg;
      cfg.epochs = 4;
      ASSERT_TRUE(
          (*model)->Train(train_, cfg, &stats[models.size()]).ok())
          << name;
      models.push_back(std::move(model.value()));
    }
    ASSERT_EQ(stats[0].loss_curve.size(), stats[1].loss_curve.size());
    for (size_t e = 0; e < stats[0].loss_curve.size(); ++e) {
      EXPECT_EQ(stats[0].loss_curve[e], stats[1].loss_curve[e])
          << name << " epoch " << e;
    }
    // Batch predictions: reference-mode model served under auto kernels
    // and vice versa — all four combinations must agree bitwise.
    std::vector<std::vector<double>> served;
    for (auto& model : models) {
      for (kernels::KernelMode mode :
           {kernels::KernelMode::kReference, kernels::KernelMode::kAuto}) {
        kernels::ScopedKernelMode pin(mode);
        auto p = model->PredictBatchMs(test_, nullptr);
        ASSERT_TRUE(p.ok()) << name;
        served.push_back(std::move(p.value()));
      }
    }
    for (size_t v = 1; v < served.size(); ++v) {
      ASSERT_EQ(served[0].size(), served[v].size());
      for (size_t i = 0; i < served[0].size(); ++i) {
        EXPECT_EQ(served[0][i], served[v][i])
            << name << " sample " << i << " variant " << v;
      }
    }
    // Reduction kept-sets through the kernels must not move either.
    ReductionConfig rcfg;
    rcfg.algorithm = ReductionAlgorithm::kDiffProp;
    rcfg.num_references = 16;
    std::vector<ReductionResult> reductions;
    for (kernels::KernelMode mode :
         {kernels::KernelMode::kReference, kernels::KernelMode::kAuto}) {
      kernels::ScopedKernelMode pin(mode);
      auto r = ReduceFeatures(*models[0], train_, rcfg, nullptr);
      ASSERT_TRUE(r.ok()) << name;
      reductions.push_back(std::move(r.value()));
    }
    for (const auto& [op, a] : reductions[0].per_op) {
      EXPECT_EQ(a.kept, reductions[1].per_op.at(op).kept) << name;
    }
  }
}

// --------------------------------------------------------------- pipeline

TEST_F(ParallelTest, PipelineFitIsBitIdenticalAcrossThreadCounts) {
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 4;
  cfg.pre_reduction_epochs = 3;
  cfg.snapshot_scale = 1;

  PipelineConfig serial_cfg = cfg;
  serial_cfg.parallelism.num_threads = 1;
  auto serial = ctx_->FitPipeline(serial_cfg, train_);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  PipelineConfig parallel_cfg = cfg;
  parallel_cfg.parallelism.num_threads = 4;
  auto parallel = ctx_->FitPipeline(parallel_cfg, train_);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ((*serial)->thread_pool(), nullptr);
  ASSERT_NE((*parallel)->thread_pool(), nullptr);
  EXPECT_EQ((*parallel)->thread_pool()->num_workers(), 4u);

  // Identical snapshots...
  ASSERT_EQ((*serial)->snapshot_store()->size(),
            (*parallel)->snapshot_store()->size());
  EXPECT_EQ((*serial)->snapshot_collection_ms(),
            (*parallel)->snapshot_collection_ms());
  for (const auto& env : ctx_->envs) {
    const FeatureSnapshot* a = (*serial)->snapshot_store()->Get(env.id);
    const FeatureSnapshot* b = (*parallel)->snapshot_store()->Get(env.id);
    for (OpType op : AllOpTypes()) {
      for (size_t c = 0; c < kSnapshotWidth; ++c) {
        EXPECT_EQ(a->Get(op).coeffs[c], b->Get(op).coeffs[c]);
      }
    }
  }
  // ...identical kept-feature sets...
  for (const auto& [op, r] : (*serial)->reduction().per_op) {
    EXPECT_EQ(r.kept, (*parallel)->reduction().per_op.at(op).kept);
  }
  // ...and identical predictions.
  auto pa = (*serial)->PredictBatch(test_);
  auto pb = (*parallel)->PredictBatch(test_);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  ASSERT_EQ(pa->size(), pb->size());
  for (size_t i = 0; i < pa->size(); ++i) EXPECT_EQ((*pa)[i], (*pb)[i]);

  // EvaluateModel with an explicit Parallelism reproduces the same metrics.
  EvalResult ea = EvaluateModel(**serial, test_);
  EvalResult eb = EvaluateModel((*parallel)->model(), test_, Parallelism{4});
  EXPECT_EQ(ea.summary.mean_qerror, eb.summary.mean_qerror);
  EXPECT_EQ(ea.summary.pearson, eb.summary.pearson);
}

}  // namespace
}  // namespace qcfe
