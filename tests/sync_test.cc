// Annotated sync layer (util/sync.h): mutual exclusion, reader
// concurrency, CondVar wake semantics, and the debug lock-rank checker.
//
// The rank-checker *core* (sync_internal::RankOnAcquire/RankOnRelease) is
// compiled unconditionally, so its ordering contract and abort messages
// are death-tested in every build type. Whether Mutex::Lock *routes
// through* the checker is the build-level QCFE_ENABLE_DCHECKS decision:
// those tests skip when LockRankCheckingEnabled() is false, and
// sync_release_tu.cc proves the complementary half — that a release build
// pays nothing and aborts nowhere.

#include "util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

namespace qcfe {
namespace {

// ------------------------------------------------------------ exclusion

TEST(SyncTest, MutexProvidesMutualExclusion) {
  struct Shared {
    Mutex mu;
    int counter QCFE_GUARDED_BY(mu) = 0;
  } shared;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&shared.mu);
        ++shared.counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&shared.mu);
  EXPECT_EQ(shared.counter, kThreads * kIncrements);
}

TEST(SyncTest, ReaderMutexLockAdmitsConcurrentReaders) {
  // Two readers must be able to hold the lock simultaneously: each spins
  // inside its shared hold until it has seen the other arrive. If shared
  // holds were exclusive this would deadlock (and trip the ctest timeout).
  SharedMutex mu;
  std::atomic<int> inside{0};
  auto reader = [&] {
    ReaderMutexLock lock(&mu);
    inside.fetch_add(1);
    while (inside.load() < 2) std::this_thread::yield();
  };
  std::thread a(reader);
  std::thread b(reader);
  a.join();
  b.join();
  EXPECT_EQ(inside.load(), 2);
}

TEST(SyncTest, WriterMutexLockExcludesWriters) {
  struct Shared {
    SharedMutex mu;
    int counter QCFE_GUARDED_BY(mu) = 0;
  } shared;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < kIncrements; ++i) {
        WriterMutexLock lock(&shared.mu);
        ++shared.counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ReaderMutexLock lock(&shared.mu);
  EXPECT_EQ(shared.counter, kThreads * kIncrements);
}

// -------------------------------------------------------------- CondVar

TEST(SyncTest, CondVarProducerConsumerDeliversEverything) {
  struct Queue {
    Mutex mu;
    CondVar cv;
    std::deque<int> items QCFE_GUARDED_BY(mu);
    bool done QCFE_GUARDED_BY(mu) = false;
  } q;
  constexpr int kItems = 1'000;

  std::thread consumer([&] {
    long long sum = 0;
    int received = 0;
    for (;;) {
      MutexLock lock(&q.mu);
      q.cv.Wait(&q.mu, [&q] {
        QCFE_ASSERT_HELD(q.mu);
        return q.done || !q.items.empty();
      });
      while (!q.items.empty()) {
        sum += q.items.front();
        q.items.pop_front();
        ++received;
      }
      if (q.done) break;
    }
    EXPECT_EQ(received, kItems);
    EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
  });

  for (int i = 0; i < kItems; ++i) {
    MutexLock lock(&q.mu);
    q.items.push_back(i);
    q.cv.NotifyOne();
  }
  {
    MutexLock lock(&q.mu);
    q.done = true;
  }
  q.cv.NotifyAll();
  consumer.join();
}

TEST(SyncTest, CondVarWaitForReportsTimeout) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  // Nobody ever notifies: WaitFor must eventually report a timeout.
  // Spurious wakeups may return true, so loop (bounded by the ctest
  // timeout) until the contract delivers the false.
  bool timed_out = false;
  for (int i = 0; i < 1'000 && !timed_out; ++i) {
    timed_out = !cv.WaitFor(&mu, /*timeout_micros=*/1'000);
  }
  EXPECT_TRUE(timed_out);
}

TEST(SyncTest, CondVarWaitForWakesOnNotify) {
  struct Shared {
    Mutex mu;
    CondVar cv;
    bool flag QCFE_GUARDED_BY(mu) = false;
  } s;
  std::thread waker([&s] {
    MutexLock lock(&s.mu);
    s.flag = true;
    s.cv.NotifyAll();
  });
  {
    MutexLock lock(&s.mu);
    // Predicate loop over the timed wait: a long timeout per slice, but
    // the notification cuts it short.
    while (!s.flag) {
      (void)s.cv.WaitFor(&s.mu, /*timeout_micros=*/100'000);  // loop re-checks
    }
    EXPECT_TRUE(s.flag);
  }
  waker.join();
}

// --------------------------------------------------- rank checker core
//
// These exercise sync_internal directly, so they are live in every build
// type — the checker itself must stay correct even when release-mode
// Mutex::Lock does not call it.

TEST(SyncRankTest, OrderedAcquisitionIsAccepted) {
  EXPECT_EQ(sync_internal::TopHeldRank(), kNoLockRank);
  sync_internal::RankOnAcquire(lock_rank::kThreadPoolQueue);
  sync_internal::RankOnAcquire(lock_rank::kAsyncServerQueue);
  sync_internal::RankOnAcquire(lock_rank::kClockWaiters);
  EXPECT_EQ(sync_internal::TopHeldRank(), lock_rank::kClockWaiters);
  sync_internal::RankOnRelease(lock_rank::kClockWaiters);
  sync_internal::RankOnRelease(lock_rank::kAsyncServerQueue);
  sync_internal::RankOnRelease(lock_rank::kThreadPoolQueue);
  EXPECT_EQ(sync_internal::TopHeldRank(), kNoLockRank);
}

TEST(SyncRankTest, OutOfLifoReleaseIsAccepted) {
  // Scoped lockers release in LIFO order, but nothing requires it: drop
  // the middle rank first, then the outer ones.
  sync_internal::RankOnAcquire(10);
  sync_internal::RankOnAcquire(20);
  sync_internal::RankOnAcquire(30);
  sync_internal::RankOnRelease(20);
  EXPECT_EQ(sync_internal::TopHeldRank(), 30);
  sync_internal::RankOnRelease(30);
  sync_internal::RankOnRelease(10);
  EXPECT_EQ(sync_internal::TopHeldRank(), kNoLockRank);
}

TEST(SyncRankTest, UnrankedLocksAreInvisibleToTheChecker) {
  sync_internal::RankOnAcquire(kNoLockRank);
  EXPECT_EQ(sync_internal::TopHeldRank(), kNoLockRank);
  sync_internal::RankOnRelease(kNoLockRank);
}

TEST(SyncRankDeathTest, InversionAbortsNamingBothRanks) {
  EXPECT_DEATH(
      {
        sync_internal::RankOnAcquire(lock_rank::kAsyncServerQueue);
        sync_internal::RankOnAcquire(lock_rank::kThreadPoolQueue);
      },
      "acquiring rank 10 while holding rank 30");
}

TEST(SyncRankDeathTest, EqualRankAbortsToo) {
  // Same-rank nesting is an inversion: "strictly increasing" also bans
  // recursively re-acquiring a ranked mutex.
  EXPECT_DEATH(
      {
        sync_internal::RankOnAcquire(40);
        sync_internal::RankOnAcquire(40);
      },
      "acquiring rank 40 while holding rank 40");
}

TEST(SyncRankDeathTest, ReleasingAnUnheldRankAborts) {
  EXPECT_DEATH(sync_internal::RankOnRelease(10),
               "released a ranked mutex this thread does not hold");
}

// ------------------------------------------- ranked mutexes under dchecks

/// Acquires `hi` then `lo` (a rank inversion when hi's rank exceeds lo's)
/// and releases both. The static analysis is disabled because the whole
/// point is to execute an acquisition order the project forbids — under
/// dchecks the second Lock aborts before any release runs.
void AcquireOutOfOrder(Mutex* hi, Mutex* lo) QCFE_NO_THREAD_SAFETY_ANALYSIS {
  hi->Lock();
  lo->Lock();
  lo->Unlock();
  hi->Unlock();
}

TEST(SyncRankDeathTest, RankedMutexInversionAbortsUnderDchecks) {
  if (!LockRankCheckingEnabled()) {
    GTEST_SKIP() << "lock-rank checking is compiled out of this build; "
                    "sync_release_tu.cc covers the release half";
  }
  Mutex server(lock_rank::kAsyncServerQueue);
  Mutex pool(lock_rank::kThreadPoolQueue);
  EXPECT_DEATH(AcquireOutOfOrder(&server, &pool),
               "acquiring rank 10 while holding rank 30");
}

TEST(SyncRankTest, RankedMutexOrderedNestingRunsUnderDchecks) {
  // The positive half of the previous test: rank-increasing nesting is
  // exactly what the table sanctions, in any build.
  Mutex pool(lock_rank::kThreadPoolQueue);
  Mutex clockw(lock_rank::kClockWaiters);
  pool.Lock();
  clockw.Lock();
  clockw.Unlock();
  pool.Unlock();
  EXPECT_EQ(sync_internal::TopHeldRank(), kNoLockRank);
}

TEST(SyncDeathTest, AssertHeldAbortsOnNonOwnerUnderDchecks) {
  if (!LockRankCheckingEnabled()) {
    GTEST_SKIP() << "owner tracking is compiled out of this build";
  }
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(),
               "calling thread does not hold this mutex");
  // Held by another thread is just as dead: ownership is per-thread, not
  // per-process. Forking a death test while a second thread is live needs
  // the re-exec style.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  MutexLock lock(&mu);
  std::thread other([&mu] {
    EXPECT_DEATH(mu.AssertHeld(),
                 "calling thread does not hold this mutex");
  });
  other.join();
}

TEST(SyncTest, AssertHeldIsSilentForTheOwner) {
  Mutex mu;
  MutexLock lock(&mu);
  QCFE_ASSERT_HELD(mu);  // must not abort in any build
}

}  // namespace
}  // namespace qcfe
