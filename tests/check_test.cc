// Contract-macro semantics (util/check.h), dcheck-enabled half.
//
// This TU forces QCFE_ENABLE_DCHECKS on before including check.h, so the
// tests here hold in every build type; tests/check_release_tu.cc forces it
// off in the same binary and proves the release no-op guarantee.
#define QCFE_ENABLE_DCHECKS 1

#include "util/check.h"

#include <gtest/gtest.h>

#include "nn/matrix.h"
#include "nn/mlp.h"
#include "util/rng.h"
#include "util/status.h"

namespace qcfe {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  QCFE_CHECK(1 + 1 == 2, "arithmetic holds");
  QCFE_CHECK_OK(Status());
  QCFE_DCHECK(true, "dchecks are live in this TU");
  EXPECT_EQ(QCFE_DCHECKS_ENABLED, 1);
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int evals = 0;
  QCFE_CHECK(++evals > 0, "side effect must run once");
  EXPECT_EQ(evals, 1);
  QCFE_DCHECK(++evals > 0, "dcheck side effect runs when enabled");
  EXPECT_EQ(evals, 2);
}

TEST(CheckDeathTest, FailedCheckAbortsWithLocationAndMessage) {
  EXPECT_DEATH(QCFE_CHECK(false, "the message"),
               "QCFE_CHECK failed at .*check_test\\.cc:[0-9]+: "
               "false — the message");
}

TEST(CheckDeathTest, FailedCheckOkRendersTheStatus) {
  EXPECT_DEATH(QCFE_CHECK_OK(Status::InvalidArgument("bad shape")),
               "bad shape");
}

TEST(CheckDeathTest, FailedDcheckAbortsWhenEnabled) {
  EXPECT_DEATH(QCFE_DCHECK(2 < 1, "ordering"), "ordering");
}

// The contracts wired into the NN layer fire on real violations. These use
// always-on QCFE_CHECKs, so they hold in release builds too.

TEST(CheckDeathTest, MatrixAddShapeMismatchAborts) {
  Matrix a(2, 3), b(3, 2);
  EXPECT_DEATH(a.Add(b), "Matrix::Add shape mismatch");
}

TEST(CheckDeathTest, BackwardWithoutMatchingForwardAborts) {
  Rng rng(7);
  Mlp net({4, 8, 1}, Activation::kRelu, &rng);
  Matrix grad(1, 1);
  Mlp::Tape stale_tape;  // never produced by Forward() on this net
  EXPECT_DEATH(net.Backward(grad, &stale_tape, nullptr),
               "tape does not match a Forward");
}

}  // namespace
}  // namespace qcfe
