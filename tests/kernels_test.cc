/// Bitwise parity suite for the NN kernel layer (nn/kernels.h): every
/// blocked / sparse / fused kernel must produce exactly the bits of the
/// historical reference loops, across edge shapes (0-row, 1-row, odd and
/// prime dims, all-zero rows, fully dense) and at every dispatch pin. On
/// top of the kernel-level checks, whole-model parity: an Mlp trained step
/// by step under each kernel mode must end with byte-identical weights.

#include <gtest/gtest.h>

#include <vector>

#include "models/cost_model.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace qcfe {
namespace {

using kernels::KernelMode;
using kernels::ScopedKernelMode;

/// (rows, cols) of the left operand x inner/right dims, plus the zero
/// fraction to plant. Shapes cover register-panel edges: sub-panel, exact
/// panels, ragged tails, prime dims, degenerate empties.
struct GemmCase {
  size_t m, k, n;
  double sparsity;
};

const GemmCase kCases[] = {
    {0, 3, 4, 0.0},    // 0-row
    {3, 0, 4, 0.0},    // empty contraction
    {1, 1, 1, 0.0},    // scalars
    {1, 48, 8, 0.0},   // training row, exact j-panel
    {2, 7, 5, 0.3},    // sub-panel ragged
    {4, 8, 8, 0.0},    // exact register panel
    {5, 9, 17, 0.5},   // ragged everything
    {13, 17, 11, 0.9}, // primes, mostly zero
    {8, 6, 8, 1.0},    // all-zero left operand
    {64, 48, 48, 0.0}, // real hidden-layer shape, fully dense
    {33, 66, 48, 0.9}, // real feature shape, plan-row sparsity
};

Matrix RandomMatrix(size_t rows, size_t cols, double sparsity, Rng* rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) {
    v = rng->Uniform(0.0, 1.0) < sparsity ? 0.0 : rng->Gaussian(0.0, 1.0);
  }
  return m;
}

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << what << " flat index " << i;
  }
}

const KernelMode kAllModes[] = {KernelMode::kAuto, KernelMode::kDense,
                                KernelMode::kSparse};

TEST(KernelParityTest, GemmNNMatchesReferenceAcrossShapesAndModes) {
  Rng rng(11);
  for (const GemmCase& c : kCases) {
    Matrix a = RandomMatrix(c.m, c.k, c.sparsity, &rng);
    Matrix b = RandomMatrix(c.k, c.n, 0.0, &rng);
    Matrix want;
    kernels::reference::GemmNN(a, b, &want);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got;
      kernels::GemmNN(a, b, &got);
      ExpectBitEqual(want, got, "GemmNN");
    }
  }
}

TEST(KernelParityTest, FusedBiasAndReluEpiloguesMatchSeparatePasses) {
  Rng rng(12);
  for (const GemmCase& c : kCases) {
    Matrix a = RandomMatrix(c.m, c.k, c.sparsity, &rng);
    Matrix b = RandomMatrix(c.k, c.n, 0.0, &rng);
    Matrix bias = RandomMatrix(1, c.n, 0.0, &rng);
    Matrix want_bias, want_relu;
    kernels::reference::GemmNNBias(a, b, bias, &want_bias);
    kernels::reference::GemmNNBiasRelu(a, b, bias, &want_relu);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got;
      kernels::GemmNNBias(a, b, bias, &got);
      ExpectBitEqual(want_bias, got, "GemmNNBias");
      kernels::GemmNNBiasRelu(a, b, bias, &got);
      ExpectBitEqual(want_relu, got, "GemmNNBiasRelu");
    }
  }
}

TEST(KernelParityTest, GemmBTMatchesReferenceAcrossShapesAndModes) {
  Rng rng(13);
  for (const GemmCase& c : kCases) {
    // BT contracts over columns: a is (m x k), b is (n x k).
    Matrix a = RandomMatrix(c.m, c.k, c.sparsity, &rng);
    Matrix b = RandomMatrix(c.n, c.k, 0.0, &rng);
    Matrix want;
    kernels::reference::GemmBT(a, b, &want);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got;
      kernels::GemmBT(a, b, &got);
      ExpectBitEqual(want, got, "GemmBT");
    }
  }
}

TEST(KernelParityTest, GemmATMatchesReferenceAcrossShapesAndModes) {
  Rng rng(14);
  for (const GemmCase& c : kCases) {
    // AT contracts over rows: a is (k x m), b is (k x n).
    Matrix a = RandomMatrix(c.k, c.m, c.sparsity, &rng);
    Matrix b = RandomMatrix(c.k, c.n, 0.0, &rng);
    Matrix want;
    kernels::reference::GemmAT(a, b, &want);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got;
      kernels::GemmAT(a, b, &got);
      ExpectBitEqual(want, got, "GemmAT");
    }
  }
}

TEST(KernelParityTest, GemmATAccumulateMatchesTemporaryPlusAdd) {
  Rng rng(15);
  for (const GemmCase& c : kCases) {
    Matrix a = RandomMatrix(c.k, c.m, c.sparsity, &rng);
    Matrix b = RandomMatrix(c.k, c.n, 0.0, &rng);
    // Accumulate onto a warm, non-zero sink: the contract is
    // full-contraction-sum first, then one add per element.
    Matrix seed = RandomMatrix(c.m, c.n, 0.0, &rng);
    Matrix want = seed;
    kernels::reference::GemmATAccumulate(a, b, &want);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got = seed;
      kernels::GemmATAccumulate(a, b, &got);
      ExpectBitEqual(want, got, "GemmATAccumulate");
    }
  }
}

TEST(KernelParityTest, ColSumAccumulateMatchesColSumPlusAdd) {
  Rng rng(16);
  for (const GemmCase& c : kCases) {
    Matrix a = RandomMatrix(c.m, c.n, c.sparsity, &rng);
    Matrix seed = RandomMatrix(1, c.n, 0.0, &rng);
    Matrix want = seed;
    kernels::reference::ColSumAccumulate(a, &want);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got = seed;
      kernels::ColSumAccumulate(a, &got);
      ExpectBitEqual(want, got, "ColSumAccumulate");
    }
  }
}

TEST(KernelParityTest, ReluMaskBackwardMatchesCopyThenMaskAndAliases) {
  Rng rng(17);
  Matrix pre = RandomMatrix(9, 13, 0.3, &rng);
  Matrix grad = RandomMatrix(9, 13, 0.0, &rng);
  Matrix want = grad;
  for (size_t i = 0; i < want.data().size(); ++i) {
    if (pre.data()[i] <= 0.0) want.data()[i] = 0.0;
  }
  Matrix got;
  kernels::ReluMaskBackward(grad, pre, &got);
  ExpectBitEqual(want, got, "ReluMaskBackward");
  // In-place form (grad_in aliases grad_out).
  Matrix inplace = grad;
  kernels::ReluMaskBackward(inplace, pre, &inplace);
  ExpectBitEqual(want, inplace, "ReluMaskBackward in-place");
}

// ------------------------------------------------------------ matrix API

TEST(MatrixKernelTest, ResetShapeKeepsCapacityOnSteadyShapes) {
  Matrix m(8, 16);
  const double* buf = m.data().data();
  m.ResetShape(8, 16);
  EXPECT_EQ(m.data().data(), buf);
  for (double v : m.data()) EXPECT_EQ(v, 0.0);
  // Shrinking reuses the buffer too.
  m.ResetShape(4, 8);
  EXPECT_EQ(m.data().data(), buf);
  m.ResetShapeUninitialized(8, 16);
  EXPECT_EQ(m.data().data(), buf);
}

TEST(MatrixKernelTest, ColMeanMatchesColSumScaled) {
  Rng rng(18);
  Matrix m = RandomMatrix(7, 5, 0.2, &rng);
  Matrix want = m.ColSum();
  want.Scale(1.0 / 7.0);
  Matrix got = m.ColMean();
  ExpectBitEqual(want, got, "ColMean");
  // Empty matrix: a 0 x n mean is all zeros, no division.
  Matrix empty(0, 3);
  Matrix mean = empty.ColMean();
  for (double v : mean.data()) EXPECT_EQ(v, 0.0);
}

// ------------------------------------------------------- whole-model parity

/// Trains a small Mlp for a few Adam steps under `mode`; returns the final
/// flattened parameters.
std::vector<double> TrainUnderMode(KernelMode mode) {
  ScopedKernelMode pin(mode);
  Rng rng(77);
  Mlp net({9, 16, 16, 1}, Activation::kRelu, &rng);
  AdamOptimizer opt(net.Params(), net.Grads(), 1e-2);
  Matrix x = RandomMatrix(24, 9, 0.6, &rng);
  std::vector<double> y(24);
  for (size_t i = 0; i < y.size(); ++i) y[i] = rng.Gaussian(0.0, 1.0);
  Mlp::Tape tape;
  GradSink sink;
  for (int step = 0; step < 20; ++step) {
    opt.ZeroGrad();
    sink.InitLike(net.Grads());
    const Matrix& out = net.Forward(x, &tape);
    Matrix grad(out.rows(), 1);
    for (size_t r = 0; r < out.rows(); ++r) {
      grad.At(r, 0) = 2.0 * (out.At(r, 0) - y[r]) / 24.0;
    }
    net.Backward(grad, &tape, &sink);
    sink.AddTo(net.Grads());
    opt.Step();
  }
  std::vector<double> flat;
  for (Matrix* p : net.Params()) {
    for (double v : p->data()) flat.push_back(v);
  }
  return flat;
}

TEST(KernelModelParityTest, TrainingIsBitIdenticalAcrossKernelModes) {
  std::vector<double> reference = TrainUnderMode(KernelMode::kReference);
  for (KernelMode mode : kAllModes) {
    std::vector<double> got = TrainUnderMode(mode);
    ASSERT_EQ(reference.size(), got.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i], got[i])
          << "param " << i << " under mode " << static_cast<int>(mode);
    }
  }
}

TEST(KernelModelParityTest, FusedServingForwardMatchesLayerwisePredict) {
  Rng rng(79);
  Mlp net({7, 12, 12, 2}, Activation::kRelu, &rng);
  Matrix x = RandomMatrix(17, 7, 0.4, &rng);
  Matrix rowwise = net.Predict(x);  // layer-by-layer, allocating
  for (KernelMode mode : kAllModes) {
    ScopedKernelMode pin(mode);
    Mlp::Scratch scratch;
    const Matrix& fused = net.Predict(x, &scratch);
    ASSERT_EQ(rowwise.rows(), fused.rows());
    for (size_t i = 0; i < rowwise.data().size(); ++i) {
      EXPECT_EQ(rowwise.data()[i], fused.data()[i])
          << "mode " << static_cast<int>(mode);
    }
  }
}

TEST(KernelModelParityTest, TapeReuseDoesNotChangeForwardBackward) {
  // One tape serving many different batches (the training arena pattern)
  // must give the same bits as a fresh tape each time.
  Rng rng(81);
  Mlp net({6, 10, 1}, Activation::kTanh, &rng);
  Mlp::Tape reused;
  for (int round = 0; round < 4; ++round) {
    Matrix x = RandomMatrix(3 + round * 5, 6, 0.3, &rng);
    Mlp::Tape fresh;
    const Matrix& out_reused = net.Forward(x, &reused);
    Matrix out_snapshot = out_reused;
    const Matrix& out_fresh = net.Forward(x, &fresh);
    for (size_t i = 0; i < out_fresh.data().size(); ++i) {
      EXPECT_EQ(out_fresh.data()[i], out_snapshot.data()[i]);
    }
    Matrix grad(out_snapshot.rows(), 1);
    for (size_t r = 0; r < grad.rows(); ++r) grad.At(r, 0) = 1.0;
    Matrix gin_reused = net.Backward(grad, &reused, nullptr);
    Matrix gin_fresh = net.Backward(grad, &fresh, nullptr);
    for (size_t i = 0; i < gin_fresh.data().size(); ++i) {
      EXPECT_EQ(gin_fresh.data()[i], gin_reused.data()[i]);
    }
  }
}

// ------------------------------------------------------- chunk autotuning

TEST(ChunkAutotuneTest, ExplicitChunkSizePassesThrough) {
  TrainConfig cfg;
  cfg.chunk_size = 7;
  EXPECT_EQ(ResolveTrainChunkSize(cfg, 1e6, 1.0), 7u);
}

TEST(ChunkAutotuneTest, AutoWidthGrowsWithMergeCostAndClampsToBatch) {
  TrainConfig cfg;
  cfg.chunk_size = 0;
  cfg.batch_size = 32;
  // Cheap merges relative to per-sample compute: fine-grained chunks.
  size_t fine = ResolveTrainChunkSize(cfg, 100.0, 10000.0);
  // Expensive merges (a small model): wider chunks.
  size_t coarse = ResolveTrainChunkSize(cfg, 10000.0, 10000.0);
  EXPECT_LT(fine, coarse);
  EXPECT_GE(fine, 1u);
  // Never wider than a batch.
  EXPECT_EQ(ResolveTrainChunkSize(cfg, 1e9, 1.0), 32u);
  // Degenerate measurements fall back to single-sample chunks.
  EXPECT_EQ(ResolveTrainChunkSize(cfg, 0.0, 0.0), 1u);
}

}  // namespace
}  // namespace qcfe
