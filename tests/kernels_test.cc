/// Parity suite for the NN kernel layer (nn/kernels.h).
///
/// Under the scalar ISA tier, every blocked / sparse / fused kernel must
/// produce exactly the bits of the historical reference loops, across edge
/// shapes (0-row, 1-row, odd and prime dims, all-zero rows, fully dense)
/// and at every dispatch pin — those tests pin ScopedKernelIsa(kScalar).
/// The SIMD tiers (AVX2/NEON, when available) are gated against the
/// reference at kSimdRelTolerance instead (FMA's single rounding legally
/// changes contraction bits), and must be *bit*-consistent within
/// themselves: batched vs row-by-row execution, every dispatch pin, and
/// the optimizer/colsum kernels (which use no FMA) stay bit-identical to
/// scalar on every tier. On top of the kernel-level checks, whole-model
/// parity: an Mlp trained step by step under each kernel mode must end
/// with byte-identical weights. The autotuner's pure threshold selection
/// (SelectTuning) is unit-tested with injected timings.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "models/cost_model.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace qcfe {
namespace {

using kernels::KernelIsa;
using kernels::KernelMode;
using kernels::ScopedKernelIsa;
using kernels::ScopedKernelMode;

/// (rows, cols) of the left operand x inner/right dims, plus the zero
/// fraction to plant. Shapes cover register-panel edges: sub-panel, exact
/// panels, ragged tails, prime dims, degenerate empties.
struct GemmCase {
  size_t m, k, n;
  double sparsity;
};

const GemmCase kCases[] = {
    {0, 3, 4, 0.0},    // 0-row
    {3, 0, 4, 0.0},    // empty contraction
    {1, 1, 1, 0.0},    // scalars
    {1, 48, 8, 0.0},   // training row, exact j-panel
    {2, 7, 5, 0.3},    // sub-panel ragged
    {4, 8, 8, 0.0},    // exact register panel
    {5, 9, 17, 0.5},   // ragged everything
    {13, 17, 11, 0.9}, // primes, mostly zero
    {8, 6, 8, 1.0},    // all-zero left operand
    {64, 48, 48, 0.0}, // real hidden-layer shape, fully dense
    {33, 66, 48, 0.9}, // real feature shape, plan-row sparsity
};

Matrix RandomMatrix(size_t rows, size_t cols, double sparsity, Rng* rng) {
  Matrix m(rows, cols);
  // Row-wise: the padded storage's pad columns must stay zero, and the
  // draw sequence must cover exactly the logical elements.
  for (size_t r = 0; r < rows; ++r) {
    double* dst = m.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) {
      dst[c] = rng->Uniform(0.0, 1.0) < sparsity ? 0.0 : rng->Gaussian(0.0, 1.0);
    }
  }
  return m;
}

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << what << " flat index " << i;
  }
}

const KernelMode kAllModes[] = {KernelMode::kAuto, KernelMode::kDense,
                                KernelMode::kSparse};

TEST(KernelParityTest, GemmNNMatchesReferenceAcrossShapesAndModes) {
  // Bit-exactness against the reference holds in the scalar tier; the SIMD
  // tiers are gated at kSimdRelTolerance by SimdTierTest below.
  ScopedKernelIsa tier(KernelIsa::kScalar);
  Rng rng(11);
  for (const GemmCase& c : kCases) {
    Matrix a = RandomMatrix(c.m, c.k, c.sparsity, &rng);
    Matrix b = RandomMatrix(c.k, c.n, 0.0, &rng);
    Matrix want;
    kernels::reference::GemmNN(a, b, &want);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got;
      kernels::GemmNN(a, b, &got);
      ExpectBitEqual(want, got, "GemmNN");
    }
  }
}

TEST(KernelParityTest, FusedBiasAndReluEpiloguesMatchSeparatePasses) {
  ScopedKernelIsa tier(KernelIsa::kScalar);
  Rng rng(12);
  for (const GemmCase& c : kCases) {
    Matrix a = RandomMatrix(c.m, c.k, c.sparsity, &rng);
    Matrix b = RandomMatrix(c.k, c.n, 0.0, &rng);
    Matrix bias = RandomMatrix(1, c.n, 0.0, &rng);
    Matrix want_bias, want_relu;
    kernels::reference::GemmNNBias(a, b, bias, &want_bias);
    kernels::reference::GemmNNBiasRelu(a, b, bias, &want_relu);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got;
      kernels::GemmNNBias(a, b, bias, &got);
      ExpectBitEqual(want_bias, got, "GemmNNBias");
      kernels::GemmNNBiasRelu(a, b, bias, &got);
      ExpectBitEqual(want_relu, got, "GemmNNBiasRelu");
    }
  }
}

TEST(KernelParityTest, GemmBTMatchesReferenceAcrossShapesAndModes) {
  ScopedKernelIsa tier(KernelIsa::kScalar);
  Rng rng(13);
  for (const GemmCase& c : kCases) {
    // BT contracts over columns: a is (m x k), b is (n x k).
    Matrix a = RandomMatrix(c.m, c.k, c.sparsity, &rng);
    Matrix b = RandomMatrix(c.n, c.k, 0.0, &rng);
    Matrix want;
    kernels::reference::GemmBT(a, b, &want);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got;
      kernels::GemmBT(a, b, &got);
      ExpectBitEqual(want, got, "GemmBT");
    }
  }
}

TEST(KernelParityTest, GemmATMatchesReferenceAcrossShapesAndModes) {
  ScopedKernelIsa tier(KernelIsa::kScalar);
  Rng rng(14);
  for (const GemmCase& c : kCases) {
    // AT contracts over rows: a is (k x m), b is (k x n).
    Matrix a = RandomMatrix(c.k, c.m, c.sparsity, &rng);
    Matrix b = RandomMatrix(c.k, c.n, 0.0, &rng);
    Matrix want;
    kernels::reference::GemmAT(a, b, &want);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got;
      kernels::GemmAT(a, b, &got);
      ExpectBitEqual(want, got, "GemmAT");
    }
  }
}

TEST(KernelParityTest, GemmATAccumulateMatchesTemporaryPlusAdd) {
  ScopedKernelIsa tier(KernelIsa::kScalar);
  Rng rng(15);
  for (const GemmCase& c : kCases) {
    Matrix a = RandomMatrix(c.k, c.m, c.sparsity, &rng);
    Matrix b = RandomMatrix(c.k, c.n, 0.0, &rng);
    // Accumulate onto a warm, non-zero sink: the contract is
    // full-contraction-sum first, then one add per element.
    Matrix seed = RandomMatrix(c.m, c.n, 0.0, &rng);
    Matrix want = seed;
    kernels::reference::GemmATAccumulate(a, b, &want);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got = seed;
      kernels::GemmATAccumulate(a, b, &got);
      ExpectBitEqual(want, got, "GemmATAccumulate");
    }
  }
}

TEST(KernelParityTest, ColSumAccumulateMatchesColSumPlusAdd) {
  // Deliberately NOT pinned to the scalar tier: column sums are vertical
  // (no FMA, no lane reductions), so every ISA tier must reproduce the
  // reference bits exactly.
  Rng rng(16);
  for (const GemmCase& c : kCases) {
    Matrix a = RandomMatrix(c.m, c.n, c.sparsity, &rng);
    Matrix seed = RandomMatrix(1, c.n, 0.0, &rng);
    Matrix want = seed;
    kernels::reference::ColSumAccumulate(a, &want);
    for (KernelMode mode : kAllModes) {
      ScopedKernelMode pin(mode);
      Matrix got = seed;
      kernels::ColSumAccumulate(a, &got);
      ExpectBitEqual(want, got, "ColSumAccumulate");
    }
  }
}

TEST(KernelParityTest, ReluMaskBackwardMatchesCopyThenMaskAndAliases) {
  Rng rng(17);
  Matrix pre = RandomMatrix(9, 13, 0.3, &rng);
  Matrix grad = RandomMatrix(9, 13, 0.0, &rng);
  Matrix want = grad;
  for (size_t i = 0; i < want.data().size(); ++i) {
    if (pre.data()[i] <= 0.0) want.data()[i] = 0.0;
  }
  Matrix got;
  kernels::ReluMaskBackward(grad, pre, &got);
  ExpectBitEqual(want, got, "ReluMaskBackward");
  // In-place form (grad_in aliases grad_out).
  Matrix inplace = grad;
  kernels::ReluMaskBackward(inplace, pre, &inplace);
  ExpectBitEqual(want, inplace, "ReluMaskBackward in-place");
}

// ------------------------------------------------------------ matrix API

TEST(MatrixKernelTest, ResetShapeKeepsCapacityOnSteadyShapes) {
  Matrix m(8, 16);
  const double* buf = m.data().data();
  m.ResetShape(8, 16);
  EXPECT_EQ(m.data().data(), buf);
  for (double v : m.data()) EXPECT_EQ(v, 0.0);
  // Shrinking reuses the buffer too.
  m.ResetShape(4, 8);
  EXPECT_EQ(m.data().data(), buf);
  m.ResetShapeUninitialized(8, 16);
  EXPECT_EQ(m.data().data(), buf);
}

TEST(MatrixKernelTest, ColMeanMatchesColSumScaled) {
  Rng rng(18);
  Matrix m = RandomMatrix(7, 5, 0.2, &rng);
  Matrix want = m.ColSum();
  want.Scale(1.0 / 7.0);
  Matrix got = m.ColMean();
  ExpectBitEqual(want, got, "ColMean");
  // Empty matrix: a 0 x n mean is all zeros, no division.
  Matrix empty(0, 3);
  Matrix mean = empty.ColMean();
  for (double v : mean.data()) EXPECT_EQ(v, 0.0);
}

// ------------------------------------------------------- whole-model parity

/// Trains a small Mlp for a few Adam steps under `mode`; returns the final
/// flattened parameters.
std::vector<double> TrainUnderMode(KernelMode mode) {
  // Scalar tier: the reference replay is scalar arithmetic, so bit-equal
  // whole-model training across modes is only promised there.
  ScopedKernelIsa tier(KernelIsa::kScalar);
  ScopedKernelMode pin(mode);
  Rng rng(77);
  Mlp net({9, 16, 16, 1}, Activation::kRelu, &rng);
  AdamOptimizer opt(net.Params(), net.Grads(), 1e-2);
  Matrix x = RandomMatrix(24, 9, 0.6, &rng);
  std::vector<double> y(24);
  for (size_t i = 0; i < y.size(); ++i) y[i] = rng.Gaussian(0.0, 1.0);
  Mlp::Tape tape;
  GradSink sink;
  for (int step = 0; step < 20; ++step) {
    opt.ZeroGrad();
    sink.InitLike(net.Grads());
    const Matrix& out = net.Forward(x, &tape);
    Matrix grad(out.rows(), 1);
    for (size_t r = 0; r < out.rows(); ++r) {
      grad.At(r, 0) = 2.0 * (out.At(r, 0) - y[r]) / 24.0;
    }
    net.Backward(grad, &tape, &sink);
    sink.AddTo(net.Grads());
    opt.Step();
  }
  std::vector<double> flat;
  for (Matrix* p : net.Params()) {
    for (double v : p->data()) flat.push_back(v);
  }
  return flat;
}

TEST(KernelModelParityTest, TrainingIsBitIdenticalAcrossKernelModes) {
  std::vector<double> reference = TrainUnderMode(KernelMode::kReference);
  for (KernelMode mode : kAllModes) {
    std::vector<double> got = TrainUnderMode(mode);
    ASSERT_EQ(reference.size(), got.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i], got[i])
          << "param " << i << " under mode " << static_cast<int>(mode);
    }
  }
}

TEST(KernelModelParityTest, FusedServingForwardMatchesLayerwisePredict) {
  Rng rng(79);
  Mlp net({7, 12, 12, 2}, Activation::kRelu, &rng);
  Matrix x = RandomMatrix(17, 7, 0.4, &rng);
  Matrix rowwise = net.Predict(x);  // layer-by-layer, allocating
  for (KernelMode mode : kAllModes) {
    ScopedKernelMode pin(mode);
    Mlp::Scratch scratch;
    const Matrix& fused = net.Predict(x, &scratch);
    ASSERT_EQ(rowwise.rows(), fused.rows());
    for (size_t i = 0; i < rowwise.data().size(); ++i) {
      EXPECT_EQ(rowwise.data()[i], fused.data()[i])
          << "mode " << static_cast<int>(mode);
    }
  }
}

TEST(KernelModelParityTest, TapeReuseDoesNotChangeForwardBackward) {
  // One tape serving many different batches (the training arena pattern)
  // must give the same bits as a fresh tape each time.
  Rng rng(81);
  Mlp net({6, 10, 1}, Activation::kTanh, &rng);
  Mlp::Tape reused;
  for (int round = 0; round < 4; ++round) {
    Matrix x = RandomMatrix(3 + round * 5, 6, 0.3, &rng);
    Mlp::Tape fresh;
    const Matrix& out_reused = net.Forward(x, &reused);
    Matrix out_snapshot = out_reused;
    const Matrix& out_fresh = net.Forward(x, &fresh);
    for (size_t i = 0; i < out_fresh.data().size(); ++i) {
      EXPECT_EQ(out_fresh.data()[i], out_snapshot.data()[i]);
    }
    Matrix grad(out_snapshot.rows(), 1);
    for (size_t r = 0; r < grad.rows(); ++r) grad.At(r, 0) = 1.0;
    Matrix gin_reused = net.Backward(grad, &reused, nullptr);
    Matrix gin_fresh = net.Backward(grad, &fresh, nullptr);
    for (size_t i = 0; i < gin_fresh.data().size(); ++i) {
      EXPECT_EQ(gin_fresh.data()[i], gin_reused.data()[i]);
    }
  }
}

// ---------------------------------------------------------- SIMD tiers

/// The SIMD tiers available on this machine/build (empty on plain builds:
/// the tier tests then validate nothing, and the scalar suite above is the
/// whole contract).
std::vector<KernelIsa> AvailableSimdTiers() {
  std::vector<KernelIsa> tiers;
  if (kernels::KernelIsaAvailable(KernelIsa::kAvx2)) {
    tiers.push_back(KernelIsa::kAvx2);
  }
  if (kernels::KernelIsaAvailable(KernelIsa::kNeon)) {
    tiers.push_back(KernelIsa::kNeon);
  }
  return tiers;
}

/// Per-element gate at the documented cross-tier tolerance, relative to
/// max(|want|, 1) so near-cancelled elements don't demand absurd absolute
/// precision.
void ExpectWithinRelTol(const Matrix& want, const Matrix& got,
                        const char* what) {
  ASSERT_EQ(want.rows(), got.rows()) << what;
  ASSERT_EQ(want.cols(), got.cols()) << what;
  for (size_t r = 0; r < want.rows(); ++r) {
    for (size_t c = 0; c < want.cols(); ++c) {
      const double w = want.At(r, c);
      const double g = got.At(r, c);
      const double denom = std::abs(w) > 1.0 ? std::abs(w) : 1.0;
      EXPECT_LE(std::abs(g - w), kernels::kSimdRelTolerance * denom)
          << what << " at (" << r << ", " << c << "): want " << w << " got "
          << g;
    }
  }
}

TEST(SimdTierTest, ProductsMatchReferenceWithinToleranceOnEdgeShapes) {
  // The satellite edge-shape sweep: 0-row, 1x1, prime dims, all-zero left
  // operands and tail columns not divisible by the vector width all live
  // in kCases. Every dispatch pin must stay inside the documented
  // tolerance on every available SIMD tier.
  for (KernelIsa isa : AvailableSimdTiers()) {
    ScopedKernelIsa tier(isa);
    Rng rng(21);
    for (const GemmCase& c : kCases) {
      Matrix a = RandomMatrix(c.m, c.k, c.sparsity, &rng);
      Matrix b = RandomMatrix(c.k, c.n, 0.0, &rng);
      Matrix bias = RandomMatrix(1, c.n, 0.0, &rng);
      Matrix want, got;
      kernels::reference::GemmNN(a, b, &want);
      for (KernelMode mode : kAllModes) {
        ScopedKernelMode pin(mode);
        kernels::GemmNN(a, b, &got);
        ExpectWithinRelTol(want, got, "simd GemmNN");
      }
      kernels::reference::GemmNNBiasRelu(a, b, bias, &want);
      kernels::simd::GemmNNBiasRelu(a, b, bias, &got);
      ExpectWithinRelTol(want, got, "simd GemmNNBiasRelu");
      Matrix bt = RandomMatrix(c.n, c.k, 0.0, &rng);
      kernels::reference::GemmBT(a, bt, &want);
      kernels::simd::GemmBT(a, bt, &got);
      ExpectWithinRelTol(want, got, "simd GemmBT");
      Matrix at_a = RandomMatrix(c.k, c.m, c.sparsity, &rng);
      Matrix at_b = RandomMatrix(c.k, c.n, 0.0, &rng);
      kernels::reference::GemmAT(at_a, at_b, &want);
      kernels::simd::GemmAT(at_a, at_b, &got);
      ExpectWithinRelTol(want, got, "simd GemmAT");
      Matrix seed = RandomMatrix(c.m, c.n, 0.0, &rng);
      want = seed;
      got = seed;
      kernels::reference::GemmATAccumulate(at_a, at_b, &want);
      kernels::simd::GemmATAccumulate(at_a, at_b, &got);
      ExpectWithinRelTol(want, got, "simd GemmATAccumulate");
    }
  }
}

TEST(SimdTierTest, DispatchPathsAreBitIdenticalWithinEachTier) {
  // The within-tier determinism contract: under one pinned tier, dense vs
  // sparse dispatch and batched vs row-by-row execution must agree bit for
  // bit (per-element chains depend only on the element's own inputs).
  std::vector<KernelIsa> tiers = AvailableSimdTiers();
  tiers.push_back(KernelIsa::kScalar);
  for (KernelIsa isa : tiers) {
    ScopedKernelIsa tier(isa);
    Rng rng(23);
    for (const GemmCase& c : kCases) {
      Matrix a = RandomMatrix(c.m, c.k, c.sparsity, &rng);
      Matrix b = RandomMatrix(c.k, c.n, 0.0, &rng);
      Matrix dense, sparse;
      {
        ScopedKernelMode pin(KernelMode::kDense);
        kernels::GemmNN(a, b, &dense);
      }
      {
        ScopedKernelMode pin(KernelMode::kSparse);
        kernels::GemmNN(a, b, &sparse);
      }
      ExpectBitEqual(dense, sparse, "dense vs sparse dispatch");
      // Batched product vs each row alone through the same entry point.
      for (size_t r = 0; r < c.m; ++r) {
        Matrix row = a.SelectRows({r});
        Matrix row_out;
        kernels::simd::GemmNN(row, b, &row_out);
        for (size_t j = 0; j < c.n; ++j) {
          ASSERT_EQ(row_out.At(0, j), dense.At(r, j))
              << "batched vs row-wise, tier " << kernels::KernelIsaName(isa)
              << " row " << r << " col " << j;
        }
      }
    }
  }
}

TEST(SimdTierTest, OptimizerAndColSumAreBitIdenticalAcrossTiers) {
  // AdamStep/SgdStep/ColSumAccumulate use single-rounding lane arithmetic
  // only (no FMA, no reductions): every tier must produce the scalar bits.
  for (KernelIsa isa : AvailableSimdTiers()) {
    Rng rng(25);
    Matrix p0 = RandomMatrix(13, 11, 0.0, &rng);
    Matrix g = RandomMatrix(13, 11, 0.3, &rng);
    Matrix m0 = RandomMatrix(13, 11, 0.0, &rng);
    Matrix v0 = RandomMatrix(13, 11, 0.0, &rng);
    v0.Hadamard(v0);  // second moments must be non-negative for sqrt
    Matrix ps = p0, ms = m0, vs = v0;
    {
      ScopedKernelIsa tier(KernelIsa::kScalar);
      kernels::AdamStep(&ps, g, &ms, &vs, 1e-3, 0.9, 0.999, 1e-8, 0.1, 0.01);
    }
    Matrix pv = p0, mv = m0, vv = v0;
    {
      ScopedKernelIsa tier(isa);
      kernels::AdamStep(&pv, g, &mv, &vv, 1e-3, 0.9, 0.999, 1e-8, 0.1, 0.01);
    }
    ExpectBitEqual(ps, pv, "AdamStep params");
    ExpectBitEqual(ms, mv, "AdamStep first moment");
    ExpectBitEqual(vs, vv, "AdamStep second moment");

    Matrix sp = p0, sv = m0;
    {
      ScopedKernelIsa tier(KernelIsa::kScalar);
      kernels::SgdStep(&sp, g, &sv, 1e-2, 0.9);
    }
    Matrix xp = p0, xv = m0;
    {
      ScopedKernelIsa tier(isa);
      kernels::SgdStep(&xp, g, &xv, 1e-2, 0.9);
    }
    ExpectBitEqual(sp, xp, "SgdStep params");
    ExpectBitEqual(sv, xv, "SgdStep velocity");

    Matrix acc_s = RandomMatrix(1, 11, 0.0, &rng);
    Matrix acc_v = acc_s;
    {
      ScopedKernelIsa tier(KernelIsa::kScalar);
      kernels::ColSumAccumulate(g, &acc_s);
    }
    {
      ScopedKernelIsa tier(isa);
      kernels::ColSumAccumulate(g, &acc_v);
    }
    ExpectBitEqual(acc_s, acc_v, "ColSumAccumulate");
  }
}

TEST(SimdTierTest, IsaStateClampsAndReportsNames) {
  // An unavailable pin clamps to the scalar tier instead of crashing in a
  // missing table.
  const KernelIsa saved = kernels::GetKernelIsa();
  kernels::SetKernelIsa(KernelIsa::kNeon);
  if (!kernels::KernelIsaAvailable(KernelIsa::kNeon)) {
    EXPECT_EQ(kernels::GetKernelIsa(), KernelIsa::kScalar);
  } else {
    EXPECT_EQ(kernels::GetKernelIsa(), KernelIsa::kNeon);
  }
  kernels::SetKernelIsa(saved);
  EXPECT_TRUE(kernels::KernelIsaAvailable(KernelIsa::kScalar));
  EXPECT_TRUE(kernels::KernelIsaAvailable(kernels::DetectKernelIsa()));
  EXPECT_STREQ(kernels::KernelIsaName(KernelIsa::kScalar), "scalar");
  EXPECT_STREQ(kernels::KernelIsaName(KernelIsa::kAvx2), "avx2");
  EXPECT_STREQ(kernels::KernelIsaName(KernelIsa::kNeon), "neon");
}

// ------------------------------------------------------ matrix alignment

TEST(MatrixLayoutTest, RowsAre64ByteAlignedWithZeroPadColumns) {
  Rng rng(27);
  for (size_t cols : {1u, 5u, 8u, 11u, 17u, 48u, 66u}) {
    Matrix m = RandomMatrix(7, cols, 0.2, &rng);
    EXPECT_EQ(m.ld() % 8, 0u);
    EXPECT_GE(m.ld(), cols);
    EXPECT_LT(m.ld() - cols, 8u);
    for (size_t r = 0; r < m.rows(); ++r) {
      EXPECT_EQ(reinterpret_cast<uintptr_t>(m.RowPtr(r)) % 64, 0u)
          << "row " << r << " cols " << cols;
      for (size_t pad = cols; pad < m.ld(); ++pad) {
        EXPECT_EQ(m.data()[r * m.ld() + pad], 0.0)
            << "pad column " << pad << " row " << r;
      }
    }
    // Mutators that rewrite whole matrices keep the pads zero.
    m.Fill(3.5);
    Matrix t = m.Transposed();
    for (size_t r = 0; r < m.rows(); ++r) {
      for (size_t pad = cols; pad < m.ld(); ++pad) {
        EXPECT_EQ(m.data()[r * m.ld() + pad], 0.0);
      }
    }
    for (size_t r = 0; r < t.rows(); ++r) {
      for (size_t pad = t.cols(); pad < t.ld(); ++pad) {
        EXPECT_EQ(t.data()[r * t.ld() + pad], 0.0);
      }
    }
  }
}

// ------------------------------------------------- startup autotuning

kernels::ProbeMeasurements FakeProbes() {
  kernels::ProbeMeasurements pm;
  pm.rows = {1, 2, 4, 8, 16};
  // Streaming wins up to 4 rows, the panel wins from 8 on.
  pm.sparse_ns = {10.0, 20.0, 40.0, 100.0, 220.0};
  pm.dense_ns = {30.0, 35.0, 45.0, 90.0, 150.0};
  pm.zero_fractions = {0.0, 0.25, 0.5, 0.75};
  // Dense wins at zf 0 and 0.25, sparse from 0.5 on.
  pm.sparse_zf_ns = {120.0, 100.0, 60.0, 30.0};
  pm.dense_zf_ns = {80.0, 80.0, 80.0, 80.0};
  pm.scalar_gemm_ns = 300.0;
  pm.simd_gemm_ns = 100.0;
  return pm;
}

TEST(KernelAutotuneTest, SelectTuningIsDeterministicOnInjectedTimings) {
  const kernels::ProbeMeasurements pm = FakeProbes();
  const kernels::KernelTuning a = kernels::SelectTuning(KernelIsa::kAvx2, pm);
  const kernels::KernelTuning b = kernels::SelectTuning(KernelIsa::kAvx2, pm);
  EXPECT_TRUE(a.autotuned);
  EXPECT_EQ(a.isa, KernelIsa::kAvx2);
  EXPECT_EQ(a.dense_min_rows, b.dense_min_rows);
  EXPECT_EQ(a.sparse_dispatch_threshold, b.sparse_dispatch_threshold);
  EXPECT_EQ(a.simd_gemm_speedup, b.simd_gemm_speedup);
  // The suffix-win rules on the injected grid: dense wins from 8 rows on;
  // sparse wins from zf 0.5, midpoint with the last dense-winning 0.25.
  EXPECT_EQ(a.dense_min_rows, 8u);
  EXPECT_DOUBLE_EQ(a.sparse_dispatch_threshold, 0.375);
  EXPECT_DOUBLE_EQ(a.simd_gemm_speedup, 3.0);
}

TEST(KernelAutotuneTest, SelectTuningIsMonotoneInTheCrossover) {
  // Making the streaming path slower can only move the dense threshold
  // down (never up), and vice versa.
  kernels::ProbeMeasurements slow_stream = FakeProbes();
  for (double& ns : slow_stream.sparse_ns) ns *= 4.0;
  kernels::ProbeMeasurements fast_stream = FakeProbes();
  for (double& ns : fast_stream.sparse_ns) ns *= 0.25;
  const size_t base =
      kernels::SelectTuning(KernelIsa::kScalar, FakeProbes()).dense_min_rows;
  const size_t lo =
      kernels::SelectTuning(KernelIsa::kScalar, slow_stream).dense_min_rows;
  const size_t hi =
      kernels::SelectTuning(KernelIsa::kScalar, fast_stream).dense_min_rows;
  EXPECT_LE(lo, base);
  EXPECT_GE(hi, base);
  // Extremes: dense winning everywhere selects the smallest grid row;
  // dense winning nowhere disables the panel (and a sparse path that never
  // wins disables the zero-fraction dispatch with a > 1 threshold).
  kernels::ProbeMeasurements always = FakeProbes();
  for (double& ns : always.sparse_ns) ns = 1e9;
  for (double& ns : always.sparse_zf_ns) ns = 1e9;
  const kernels::KernelTuning all_dense =
      kernels::SelectTuning(KernelIsa::kScalar, always);
  EXPECT_EQ(all_dense.dense_min_rows, 1u);
  EXPECT_GT(all_dense.sparse_dispatch_threshold, 1.0);
  kernels::ProbeMeasurements never = FakeProbes();
  for (double& ns : never.dense_ns) ns = 1e9;
  for (double& ns : never.dense_zf_ns) ns = 1e9;
  const kernels::KernelTuning no_dense =
      kernels::SelectTuning(KernelIsa::kScalar, never);
  EXPECT_EQ(no_dense.dense_min_rows, SIZE_MAX);
  EXPECT_DOUBLE_EQ(no_dense.sparse_dispatch_threshold, 0.0);
}

TEST(KernelAutotuneTest, MalformedProbesFallBackToCompiledDefaults) {
  kernels::ProbeMeasurements empty;
  const kernels::KernelTuning t =
      kernels::SelectTuning(KernelIsa::kScalar, empty);
  EXPECT_FALSE(t.autotuned);
  EXPECT_EQ(t.dense_min_rows, 32u);
  EXPECT_DOUBLE_EQ(t.sparse_dispatch_threshold,
                   kernels::kSparseDispatchThreshold);
  kernels::ProbeMeasurements bad = FakeProbes();
  bad.dense_ns[2] = 0.0;  // non-positive timing
  EXPECT_FALSE(kernels::SelectTuning(KernelIsa::kScalar, bad).autotuned);
  kernels::ProbeMeasurements ragged = FakeProbes();
  ragged.sparse_ns.pop_back();  // mismatched grid
  EXPECT_FALSE(kernels::SelectTuning(KernelIsa::kScalar, ragged).autotuned);
}

TEST(KernelAutotuneTest, ProcessTuningIsLazyFixedAndIsaTagged) {
  kernels::Autotune();
  const kernels::KernelTuning& t = kernels::Tuning();
  EXPECT_EQ(t.isa, kernels::GetKernelIsa());
  // Fixed for the process: a second read returns the same thresholds.
  const kernels::KernelTuning& again = kernels::Tuning();
  EXPECT_EQ(t.dense_min_rows, again.dense_min_rows);
  EXPECT_EQ(t.sparse_dispatch_threshold, again.sparse_dispatch_threshold);
  // The scalar tier always reports itself under a scalar pin.
  ScopedKernelIsa tier(KernelIsa::kScalar);
  EXPECT_EQ(kernels::Tuning().isa, KernelIsa::kScalar);
  EXPECT_DOUBLE_EQ(kernels::Tuning().simd_gemm_speedup, 1.0);
}

// ------------------------------------------------------- chunk autotuning

TEST(ChunkAutotuneTest, ExplicitChunkSizePassesThrough) {
  TrainConfig cfg;
  cfg.chunk_size = 7;
  EXPECT_EQ(ResolveTrainChunkSize(cfg, 1e6, 1.0), 7u);
}

TEST(ChunkAutotuneTest, AutoWidthGrowsWithMergeCostAndClampsToBatch) {
  TrainConfig cfg;
  cfg.chunk_size = 0;
  cfg.batch_size = 32;
  // Cheap merges relative to per-sample compute: fine-grained chunks.
  size_t fine = ResolveTrainChunkSize(cfg, 100.0, 10000.0);
  // Expensive merges (a small model): wider chunks.
  size_t coarse = ResolveTrainChunkSize(cfg, 10000.0, 10000.0);
  EXPECT_LT(fine, coarse);
  EXPECT_GE(fine, 1u);
  // Never wider than a batch.
  EXPECT_EQ(ResolveTrainChunkSize(cfg, 1e9, 1.0), 32u);
  // Degenerate measurements fall back to single-sample chunks.
  EXPECT_EQ(ResolveTrainChunkSize(cfg, 0.0, 0.0), 1u);
}

}  // namespace
}  // namespace qcfe
