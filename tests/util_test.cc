/// Unit tests for src/util: Status/Result, RNG determinism and distribution
/// sanity, the thread pool (coverage, exception propagation, nesting),
/// metric definitions (q-error, Pearson, quantiles), string helpers and
/// table rendering.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/clock.h"
#include "util/sync.h"
#include "util/env_config.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace qcfe {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad scale");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad scale");
}

TEST(StatusTest, ResultHoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusTest, ResultHoldsError) {
  Result<int> r = Status::NotFound("no such table");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    QCFE_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_FALSE(wrapper().ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.Gaussian();
  EXPECT_NEAR(Mean(xs), 0.0, 0.05);
  EXPECT_NEAR(Stddev(xs), 1.0, 0.05);
}

TEST(RngTest, LognormalNoiseMeanIsOne) {
  Rng rng(13);
  std::vector<double> xs(40000);
  for (double& x : xs) x = rng.LognormalNoise(0.1);
  EXPECT_NEAR(Mean(xs), 1.0, 0.01);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(RngTest, LognormalZeroSigmaIsExactlyOne) {
  Rng rng(13);
  EXPECT_EQ(rng.LognormalNoise(0.0), 1.0);
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(17);
  int low = 0, n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.2) <= 10) ++low;
  }
  // With s=1.2 the first decile carries well over half the mass.
  EXPECT_GT(low, n / 2);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(17);
  int low = 0, n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 0.0) <= 50) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.5, 0.03);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(19);
  auto idx = rng.SampleIndices(50, 20);
  std::set<size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t i : idx) EXPECT_LT(i, 50u);
}

TEST(RngTest, SampleAllIndices) {
  Rng rng(19);
  auto idx = rng.SampleIndices(10, 10);
  std::set<size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkStreamsAreIndependent) {
  Rng parent(31);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  EXPECT_NE(c1.Next(), c2.Next());
}

TEST(RngTest, SplitDoesNotAdvanceParent) {
  Rng a(41), b(41);
  (void)a.Split(0);  // child discarded: only a's own stream is under test
  (void)a.Split(7);  // child discarded: only a's own stream is under test
  // a's own stream is untouched by splitting.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SplitIsDeterministicAndOrderIndependent) {
  Rng a(43), b(43);
  Rng a5 = a.Split(5);
  (void)b.Split(9);  // splitting other streams first changes nothing
  Rng b5 = b.Split(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a5.Next(), b5.Next());
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(47);
  Rng s1 = parent.Split(1);
  Rng s2 = parent.Split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (s1.Next() == s2.Next());
  EXPECT_LT(same, 2);
}

TEST(ThreadPoolTest, ResolveNumThreads) {
  EXPECT_EQ(ResolveNumThreads(3), 3u);
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_GE(ResolveNumThreads(0), 1u);   // hardware concurrency
  EXPECT_GE(ResolveNumThreads(-1), 1u);
}

TEST(ThreadPoolTest, PartitionBlocksCoversRangeContiguously) {
  auto blocks = PartitionBlocks(10, 4);
  ASSERT_EQ(blocks.size(), 4u);
  size_t at = 0;
  for (const auto& [begin, end] : blocks) {
    EXPECT_EQ(begin, at);
    EXPECT_GT(end, begin);
    at = end;
  }
  EXPECT_EQ(at, 10u);
  EXPECT_TRUE(PartitionBlocks(0, 4).empty());
  EXPECT_EQ(PartitionBlocks(3, 8).size(), 3u);  // never more blocks than items
}

TEST(ThreadPoolTest, ParallelForZeroItems) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(&pool, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Zero items with a null pool is equally a no-op.
  ParallelFor(nullptr, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  ParallelFor(&pool, hits.size(), [&](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NullPoolRunsSerially) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelMapKeepsIndexOrder) {
  ThreadPool pool(3);
  std::vector<int> out = ParallelMap<int>(
      &pool, 100, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 64,
                  [&](size_t i) {
                    if (i == 13) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool survives a throwing loop and stays usable.
  std::atomic<int> calls{0};
  ParallelFor(&pool, 16, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPoolTest, FirstBlockExceptionWins) {
  ThreadPool pool(4);
  try {
    ParallelFor(&pool, 4, [&](size_t i) {
      throw std::runtime_error("block " + std::to_string(i));
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    // Blocks map 1:1 onto indices here, so the lowest index must surface.
    EXPECT_STREQ(e.what(), "block 0");
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  ParallelFor(&pool, 8, [&](size_t outer) {
    EXPECT_TRUE(pool.InWorkerThread());
    // Nested loop on the same pool: must run inline, not deadlock.
    ParallelFor(&pool, 8, [&](size_t inner) { ++hits[outer * 8 + inner]; });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedExceptionStillPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(&pool, 4,
                           [&](size_t) {
                             ParallelFor(&pool, 4, [&](size_t j) {
                               if (j == 3) throw std::logic_error("inner");
                             });
                           }),
               std::logic_error);
}

TEST(StatsTest, QErrorPerfectPredictionIsOne) {
  EXPECT_DOUBLE_EQ(QError(10.0, 10.0), 1.0);
}

TEST(StatsTest, QErrorSymmetric) {
  EXPECT_DOUBLE_EQ(QError(10.0, 5.0), QError(5.0, 10.0));
  EXPECT_DOUBLE_EQ(QError(10.0, 5.0), 2.0);
}

TEST(StatsTest, QErrorClampsNonPositive) {
  double q = QError(10.0, -5.0);
  EXPECT_TRUE(std::isfinite(q));
  EXPECT_GT(q, 1.0);
}

TEST(StatsTest, QErrorAlwaysAtLeastOne) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double a = rng.Uniform(0.001, 100.0), p = rng.Uniform(0.001, 100.0);
    EXPECT_GE(QError(a, p), 1.0);
  }
}

TEST(StatsTest, PearsonPerfectPositive) {
  std::vector<double> a{1, 2, 3, 4}, b{2, 4, 6, 8};
  EXPECT_NEAR(Pearson(a, b), 1.0, 1e-12);
}

TEST(StatsTest, PearsonPerfectNegative) {
  std::vector<double> a{1, 2, 3, 4}, b{8, 6, 4, 2};
  EXPECT_NEAR(Pearson(a, b), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantInputIsZero) {
  std::vector<double> a{1, 1, 1, 1}, b{2, 4, 6, 8};
  EXPECT_EQ(Pearson(a, b), 0.0);
}

TEST(StatsTest, QuantileEdges) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.5);
}

TEST(StatsTest, MeanVarianceKnownValues) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(Stddev(xs), 2.0);
}

TEST(StatsTest, SummarizeBundlesAllMetrics) {
  std::vector<double> actual{10, 20, 30, 40};
  std::vector<double> pred{10, 20, 30, 80};
  MetricSummary s = Summarize(actual, pred);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.max_qerror, 2.0);
  EXPECT_GE(s.mean_qerror, 1.0);
  EXPECT_GT(s.pearson, 0.9);
  EXPECT_LE(s.q25, s.median_qerror);
  EXPECT_LE(s.median_qerror, s.q75);
  EXPECT_LE(s.q75, s.q90);
  EXPECT_LE(s.q90, s.q95);
}

TEST(StringTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringTest, CaseConversion) {
  EXPECT_EQ(ToLower("SELECT * FROM T"), "select * from t");
  EXPECT_EQ(ToUpper("select"), "SELECT");
}

TEST(StringTest, JoinAndReplace) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "a", "aa"), "aaaaaa");
}

TEST(StringTest, StartsWithContains) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SE", "SELECT"));
  EXPECT_TRUE(Contains("a join b", "join"));
}

TEST(StringTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
}

TEST(TablePrinterTest, AlignsColumnsAndPadsShortRows) {
  TablePrinter tp({"model", "qerr"});
  tp.AddRow({"QCFE(qpp)", "1.072"});
  tp.AddRow({"pg"});
  std::ostringstream os;
  tp.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("QCFE(qpp)"), std::string::npos);
  EXPECT_NE(out.find("model"), std::string::npos);
  EXPECT_EQ(tp.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter tp({"a", "b"});
  tp.AddRow({"1", "2"});
  std::ostringstream os;
  tp.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(EnvConfigTest, DefaultsToQuickScale) {
  // The test environment does not set QCFE_SCALE.
  EXPECT_EQ(RunScaleName(), "quick");
  EXPECT_EQ(ScaledCount(10000, 10, 500), 1000u);
  EXPECT_EQ(ScaledCount(1000, 10, 500), 500u);
}

TEST(EnvConfigTest, ThreadsFromArgsParsesBothForms) {
  // Shield the no-flag fallback from a QCFE_THREADS in the developer's
  // shell.
  const char* saved = std::getenv("QCFE_THREADS");
  std::string saved_value = saved == nullptr ? "" : saved;
  unsetenv("QCFE_THREADS");

  const char* eq[] = {"bench", "--threads=4"};
  EXPECT_EQ(ThreadsFromArgs(2, const_cast<char**>(eq)), 4);
  const char* sep[] = {"bench", "--threads", "8"};
  EXPECT_EQ(ThreadsFromArgs(3, const_cast<char**>(sep)), 8);
  const char* none[] = {"bench"};
  EXPECT_EQ(ThreadsFromArgs(1, const_cast<char**>(none)), 1);
  // Malformed values fall back to serial, not to all hardware threads.
  const char* bad[] = {"bench", "--threads=abc"};
  EXPECT_EQ(ThreadsFromArgs(2, const_cast<char**>(bad)), 1);

  setenv("QCFE_THREADS", "6", 1);
  EXPECT_EQ(ThreadsFromArgs(1, const_cast<char**>(none)), 6);

  if (saved == nullptr) {
    unsetenv("QCFE_THREADS");
  } else {
    setenv("QCFE_THREADS", saved_value.c_str(), 1);
  }
}

TEST(EnvConfigTest, WallTimerAdvances) {
  // Real-clock smoke only: elapsed time is non-negative. Exact elapsed-time
  // behaviour is asserted below with an injected FakeClock — a wall-clock
  // upper bound here (the historical `Seconds() < 1.0`) flakes whenever a
  // loaded CI machine or a sanitizer build stalls the test for a second.
  WallTimer t;
  EXPECT_GE(t.Seconds(), 0.0);
}

TEST(EnvConfigTest, WallTimerFollowsInjectedClock) {
  // Exactly-representable elapsed values (multiples of 2^-2 seconds), so
  // bitwise EXPECT_EQ is valid.
  FakeClock clock(5'000'000);
  WallTimer t(&clock);
  EXPECT_EQ(t.Seconds(), 0.0);
  clock.Advance(250'000);
  EXPECT_EQ(t.Seconds(), 0.25);
  clock.Advance(750'000);
  EXPECT_EQ(t.Seconds(), 1.0);
  t.Reset();
  EXPECT_EQ(t.Seconds(), 0.0);
  clock.Advance(2'000'000);
  EXPECT_EQ(t.Seconds(), 2.0);
}

TEST(ClockTest, FakeClockAdvancesManually) {
  FakeClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.Advance(42);
  EXPECT_EQ(clock.NowMicros(), 42);
  FakeClock offset(100);
  EXPECT_EQ(offset.NowMicros(), 100);
}

TEST(ClockTest, FakeClockWaitUntilWakesOnAdvanceAndOnPredicate) {
  FakeClock clock;
  Mutex mu;
  CondVar cv;
  bool flag = false;

  // Deadline wake: a waiter whose predicate never fires returns false once
  // Advance() carries the clock to its deadline. No sleeps anywhere.
  std::thread deadline_waiter([&] {
    MutexLock lock(&mu);
    bool woken_by_pred = clock.WaitUntil(&cv, &mu, 1000, [] { return false; });
    EXPECT_FALSE(woken_by_pred);
  });
  clock.Advance(1000);
  deadline_waiter.join();

  // Predicate wake: an ordinary cv notification delivers through WaitUntil
  // even though time never reaches the deadline.
  std::thread pred_waiter([&] {
    MutexLock lock(&mu);
    bool woken_by_pred = clock.WaitUntil(&cv, &mu, Clock::kNoDeadline, [&] {
      QCFE_ASSERT_HELD(mu);
      return flag;
    });
    EXPECT_TRUE(woken_by_pred);
  });
  {
    MutexLock lock(&mu);
    flag = true;
  }
  cv.NotifyAll();
  pred_waiter.join();
}

TEST(ClockTest, FakeClockWaiterRegistryDropsEntriesWhenWaitsReturn) {
  // Regression test for the waiter-registry lifetime hole: two waiters
  // sharing one CondVar must each remove exactly their own registry entry.
  // The historical erase-by-cv cleanup could remove the *other* thread's
  // entry, leaving a stale Waiter pointing at a stack frame that has
  // already returned — the next Advance() would then touch freed memory.
  FakeClock clock;
  Mutex mu;
  CondVar cv;
  bool first_done = false;
  bool second_done = false;
  EXPECT_EQ(clock.waiter_count_for_test(), 0u);

  std::thread first([&] {
    MutexLock lock(&mu);
    clock.WaitUntil(&cv, &mu, Clock::kNoDeadline, [&] {
      QCFE_ASSERT_HELD(mu);
      return first_done;
    });
  });
  std::thread second([&] {
    MutexLock lock(&mu);
    clock.WaitUntil(&cv, &mu, Clock::kNoDeadline, [&] {
      QCFE_ASSERT_HELD(mu);
      return second_done;
    });
  });

  // Wait (in real time) for both threads to park and register.
  while (clock.waiter_count_for_test() < 2) std::this_thread::yield();

  // Release the first waiter only: exactly one registry entry must go with
  // it, and the second waiter's entry must survive.
  {
    MutexLock lock(&mu);
    first_done = true;
  }
  cv.NotifyAll();
  first.join();
  EXPECT_EQ(clock.waiter_count_for_test(), 1u);

  {
    MutexLock lock(&mu);
    second_done = true;
  }
  cv.NotifyAll();
  second.join();
  EXPECT_EQ(clock.waiter_count_for_test(), 0u);

  // A registry empty again means Advance() walks no stale entries.
  clock.Advance(1);
}

TEST(ClockTest, RealClockIsMonotonic) {
  Clock* clock = Clock::Real();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  // A satisfied predicate returns immediately regardless of deadline.
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_TRUE(
      clock->WaitUntil(&cv, &mu, Clock::kNoDeadline, [] { return true; }));
}

}  // namespace
}  // namespace qcfe
