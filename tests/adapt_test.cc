/// Tests for the online adaptation loop (src/adapt) and its hooks through
/// serve and core:
///
///  * ObservationSink ring semantics and AsyncServer::ReportObserved
///    counter/forwarding behaviour.
///  * DetectDrift as a pure function: stable windows must not trip, a
///    sustained level shift trips the mean-ratio test, a fresh drift inside
///    a diluted window trips the Page–Hinkley test, and min_samples gates
///    both. DriftDetector baseline/override table behaviour on top.
///  * Pipeline::Retrain stats merge (the stale-train_stats_ bugfix):
///    Retrain -> Explain and Retrain -> Save -> Load must describe the
///    post-retrain fit, and the fit-time drift baselines must round-trip
///    through the artifact's kAdaptBaseline section.
///  * Retrain bit-identity at 1/2/4 threads (warm-start chunk-parallel
///    training is deterministic, so background adaptation never forks the
///    model by thread count).
///  * The full loop, deterministically and with zero sleeps: serve under a
///    FakeClock, inject drifted labels, the detector trips, a background
///    warm-start retrain publishes through LoadAndSwap, and q-error on the
///    drifted workload recovers. Failure legs: a failed save and a rejected
///    swap each bump exactly one typed counter and leave the serving
///    version bit-identical.
///  * A multi-caller stress test: every reply produced while adaptation
///    cycles continuously must bit-match exactly one published version.
///
/// CI runs this suite under ASan (dchecks) and TSan (see
/// .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adapt/adaptation_controller.h"
#include "adapt/drift_detector.h"
#include "adapt/observation_sink.h"
#include "core/pipeline.h"
#include "harness/context.h"
#include "serve/async_server.h"
#include "serve/model_swap.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/fs.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/sync.h"

namespace qcfe {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "qcfe_adapt_" + name;
}

std::vector<uint64_t> Bits(const std::vector<double>& values) {
  std::vector<uint64_t> bits(values.size());
  std::memcpy(bits.data(), values.data(), values.size() * sizeof(double));
  return bits;
}

// ------------------------------------------------- shared fitted context

struct SharedFixtures {
  std::unique_ptr<BenchmarkContext> ctx;
  std::vector<PlanSample> train, test;
};

SharedFixtures* Fixtures() {
  static SharedFixtures* fixtures = [] {
    auto* f = new SharedFixtures();
    HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
    opt.corpus_size = 200;
    opt.num_envs = 2;
    auto ctx = BenchmarkContext::Create(opt);
    QCFE_CHECK(ctx.ok(), "adapt_test benchmark context failed");
    f->ctx = std::move(ctx.value());
    f->ctx->Split(200, &f->train, &f->test);
    return f;
  }();
  return fixtures;
}

/// Cheap full-QCFE qppnet fit used as the adaptation trainer.
PipelineConfig QppConfig() {
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.pre_reduction_epochs = 3;
  cfg.train.epochs = 5;
  return cfg;
}

std::unique_ptr<Pipeline> FitTrainer(SharedFixtures* f) {
  auto trainer = f->ctx->FitPipeline(QppConfig(), f->train);
  QCFE_CHECK(trainer.ok(), "adapt_test trainer fit failed");
  return std::move(trainer.value());
}

/// `samples` with every label scaled by `scale` — the drift-injection
/// corpus (the world got `scale`x slower; plans are unchanged).
std::vector<PlanSample> ScaledLabels(const std::vector<PlanSample>& samples,
                                     size_t count, double scale) {
  std::vector<PlanSample> out;
  out.reserve(count);
  for (size_t i = 0; i < count && i < samples.size(); ++i) {
    out.push_back({samples[i].plan, samples[i].env_id,
                   scale * samples[i].label_ms});
  }
  return out;
}

// -------------------------------------------------------- observation sink

TEST(ObservationSinkTest, RingsDropOldestAndUnrollInArrivalOrder) {
  adapt::ObservationWindowConfig wc;
  wc.window_capacity = 3;
  wc.label_capacity = 4;
  adapt::ObservationSink sink(wc);
  PlanNode plan;
  plan.est_rows = 1.0;
  plan.actual_ms = 1.0;

  // predicted 1, actuals 2,4,8,16,32 -> q-errors 2,4,8,16,32.
  for (double actual : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    sink.OnObservation(plan, 7, 1.0, actual);
  }
  EXPECT_EQ(sink.WindowQErrors(7), (std::vector<double>{8.0, 16.0, 32.0}));
  EXPECT_EQ(sink.EnvObservations(7), 5u);
  EXPECT_EQ(sink.TotalObservations(), 5u);
  EXPECT_TRUE(sink.WindowQErrors(99).empty());

  adapt::LabeledCorpus labels = sink.LabeledSamples();
  ASSERT_EQ(labels.samples.size(), 4u);  // capacity-bounded, oldest dropped
  EXPECT_EQ(labels.samples.front().label_ms, 4.0);
  EXPECT_EQ(labels.samples.back().label_ms, 32.0);
  // The buffered plan is a rescaled clone, never the caller's plan: its
  // subtree targets sum to the observed time, so training on the corpus
  // fits what was measured.
  EXPECT_NE(labels.samples.front().plan, &plan);
  for (const PlanSample& s : labels.samples) {
    EXPECT_EQ(SubtreeLatencyMs(*s.plan), s.label_ms);
  }

  sink.OnObservation(plan, 9, 1.0, 3.0);
  EXPECT_EQ(sink.EnvIds(), (std::vector<int>{7, 9}));

  // ClearWindows drops q-error history only: cumulative counters and the
  // labeled retraining buffer survive.
  sink.ClearWindows();
  EXPECT_TRUE(sink.WindowQErrors(7).empty());
  EXPECT_TRUE(sink.WindowQErrors(9).empty());
  EXPECT_EQ(sink.EnvObservations(7), 5u);
  EXPECT_EQ(sink.LabeledSamples().samples.size(), 4u);
  sink.OnObservation(plan, 7, 1.0, 6.0);
  EXPECT_EQ(sink.WindowQErrors(7), (std::vector<double>{6.0}));
  EXPECT_EQ(sink.EnvObservations(7), 6u);
}

TEST(ObservationSinkTest, ScaledClonesAttributeAndOutliveEviction) {
  adapt::ObservationWindowConfig wc;
  wc.label_capacity = 1;
  adapt::ObservationSink sink(wc);

  // A two-node plan with recorded latencies 3ms + 1ms, observed at 8ms:
  // both nodes scale by 2x, structure and estimates untouched.
  PlanNode plan;
  plan.op = OpType::kSort;
  plan.actual_ms = 3.0;
  plan.est_rows = 42.0;
  auto child = std::make_unique<PlanNode>();
  child->op = OpType::kSeqScan;
  child->table = "t";
  child->actual_ms = 1.0;
  plan.children.push_back(std::move(child));
  sink.OnObservation(plan, 1, 4.0, 8.0);

  adapt::LabeledCorpus corpus = sink.LabeledSamples();
  ASSERT_EQ(corpus.samples.size(), 1u);
  const PlanNode* clone = corpus.samples[0].plan;
  EXPECT_EQ(clone->actual_ms, 6.0);
  ASSERT_EQ(clone->children.size(), 1u);
  EXPECT_EQ(clone->children[0]->actual_ms, 2.0);
  EXPECT_EQ(clone->children[0]->table, "t");
  EXPECT_EQ(clone->est_rows, 42.0);
  EXPECT_EQ(plan.actual_ms, 3.0);  // the caller's plan is never mutated

  // A plan with no recorded latency cannot be attributed: buffered as-is.
  PlanNode blank;
  sink.OnObservation(blank, 1, 4.0, 8.0);
  EXPECT_EQ(sink.LabeledSamples().samples[0].plan->actual_ms, 0.0);

  // The capacity-1 ring just evicted the scaled clone, but the earlier
  // snapshot owns it (LabeledCorpus::owners): a retrain holding `corpus`
  // keeps training on valid plans no matter what arrives meanwhile.
  EXPECT_EQ(corpus.samples[0].plan->actual_ms, 6.0);
}

TEST(ObservationSinkTest, ReportObservedCountsAndForwards) {
  SwappableModel models;  // never published; ReportObserved is model-free
  AsyncServeConfig scfg;
  auto server = Pipeline::ServeAsync(&models, scfg);
  PlanNode plan;
  plan.est_rows = 5.0;

  // No listener attached: counted as dropped, nothing delivered.
  server->ReportObserved(plan, 1, 10.0, 20.0);
  AsyncServeStats stats = server->stats();
  EXPECT_EQ(stats.observations, 0u);
  EXPECT_EQ(stats.observations_dropped, 1u);

  adapt::ObservationSink sink;
  server->set_observation_listener(&sink);
  server->ReportObserved(plan, 1, 10.0, 20.0);  // q-error 2
  stats = server->stats();
  EXPECT_EQ(stats.observations, 1u);
  EXPECT_EQ(stats.observations_dropped, 1u);
  EXPECT_EQ(sink.WindowQErrors(1), (std::vector<double>{2.0}));
  ASSERT_EQ(sink.LabeledSamples().samples.size(), 1u);
  EXPECT_EQ(sink.LabeledSamples().samples[0].label_ms, 20.0);

  server->set_observation_listener(nullptr);
  server->ReportObserved(plan, 1, 10.0, 20.0);
  EXPECT_EQ(server->stats().observations_dropped, 2u);
  EXPECT_EQ(sink.TotalObservations(), 1u);
  server->Shutdown();
}

// --------------------------------------------------------- drift detection

TEST(DriftDetectTest, StableWindowDoesNotTrip) {
  adapt::DriftConfig cfg;  // defaults: min 32, ratio 1.5, lambda 4
  // Q-errors rattling around the 1.2 baseline: mean ratio 1.0, and the
  // Page–Hinkley walk has no sustained upward component.
  std::vector<double> window;
  for (size_t i = 0; i < 64; ++i) window.push_back(i % 2 == 0 ? 1.05 : 1.35);
  adapt::DriftVerdict v = adapt::DetectDrift(window, 1.2, cfg);
  EXPECT_FALSE(v.drifted);
  EXPECT_FALSE(v.mean_trip);
  EXPECT_FALSE(v.page_hinkley_trip);
  EXPECT_EQ(v.samples, 64u);
  EXPECT_NEAR(v.window_mean_qerror, 1.2, 1e-9);
}

TEST(DriftDetectTest, MinSamplesGatesBothTests) {
  adapt::DriftConfig cfg;
  cfg.min_samples = 32;
  // Screaming drift, but only 8 samples: no verdict yet, only diagnostics.
  std::vector<double> window(8, 100.0);
  adapt::DriftVerdict v = adapt::DetectDrift(window, 1.0, cfg);
  EXPECT_FALSE(v.drifted);
  EXPECT_EQ(v.samples, 8u);
  EXPECT_NEAR(v.window_mean_qerror, 100.0, 1e-9);
}

TEST(DriftDetectTest, SustainedShiftTripsMeanRatioNotPageHinkley) {
  adapt::DriftConfig cfg;
  cfg.min_samples = 32;
  // A window that was *already* degraded when it started: constant 4.0
  // q-error. There is no change-point inside the window, so Page–Hinkley
  // stays flat — only the comparison against the fit-time baseline can see
  // this, which is why both tests exist.
  std::vector<double> window(40, 4.0);
  adapt::DriftVerdict v = adapt::DetectDrift(window, 1.3, cfg);
  EXPECT_TRUE(v.drifted);
  EXPECT_TRUE(v.mean_trip);
  EXPECT_FALSE(v.page_hinkley_trip);
  EXPECT_NEAR(v.baseline_mean_qerror, 1.3, 1e-12);
}

TEST(DriftDetectTest, FreshDriftInDilutedWindowTripsPageHinkley) {
  adapt::DriftConfig cfg;
  cfg.min_samples = 32;
  // 48 healthy samples dilute 16 heavily drifted ones below the mean-ratio
  // threshold (mean 2.83 < 1.5 * 2.5), but the cumulative test sees the
  // late upward break clearly.
  std::vector<double> window(48, 1.1);
  window.insert(window.end(), 16, 8.0);
  adapt::DriftVerdict v = adapt::DetectDrift(window, 2.5, cfg);
  EXPECT_TRUE(v.drifted);
  EXPECT_FALSE(v.mean_trip);
  EXPECT_TRUE(v.page_hinkley_trip);
  EXPECT_GT(v.page_hinkley_stat, cfg.ph_lambda);
}

TEST(DriftDetectTest, CorruptBaselineIsClampedToPerfect) {
  adapt::DriftConfig cfg;
  cfg.min_samples = 4;
  // A baseline below 1.0 is impossible for a real q-error mean; clamping
  // to 1.0 keeps a zeroed/corrupt baseline from making the ratio test
  // hair-triggered.
  std::vector<double> window(8, 1.2);
  adapt::DriftVerdict v = adapt::DetectDrift(window, 0.0, cfg);
  EXPECT_EQ(v.baseline_mean_qerror, 1.0);
  EXPECT_FALSE(v.drifted);
}

TEST(DriftDetectorTest, BaselinesAndPerEnvOverrides) {
  adapt::DriftConfig d;
  d.min_samples = 4;
  d.mean_ratio_threshold = 2.0;
  d.ph_lambda = 1e9;  // isolate the mean-ratio test
  adapt::DriftDetector det(d);
  EXPECT_EQ(det.Baseline(3), d.fallback_baseline);

  std::vector<double> window(4, 3.0);
  // Fallback baseline 1.0: ratio 3.0 > 2.0 trips.
  EXPECT_TRUE(det.Evaluate(3, window).drifted);
  // With the real fit-time baseline the same window is fine.
  det.SetBaseline(3, 2.0);
  EXPECT_EQ(det.Baseline(3), 2.0);
  EXPECT_FALSE(det.Evaluate(3, window).drifted);
  // Per-env threshold override tightens just this environment.
  adapt::DriftConfig strict = d;
  strict.mean_ratio_threshold = 1.2;
  det.SetEnvConfig(3, strict);
  EXPECT_TRUE(det.Evaluate(3, window).drifted);
  // Wholesale baseline refresh (what a successful retrain does).
  det.SetBaselines({{3, 3.0}});
  EXPECT_FALSE(det.Evaluate(3, window).drifted);
}

// ------------------------------------- retrain stats merge (bugfix) + io

TEST(RetrainTest, MergesStatsAndRoundTripsThroughArtifact) {
  SharedFixtures* f = Fixtures();
  std::unique_ptr<Pipeline> trainer = FitTrainer(f);
  const size_t fit_epochs = trainer->train_stats().loss_curve.size();
  ASSERT_GT(fit_epochs, 0u);
  EXPECT_FALSE(trainer->env_baseline_qerror().empty());

  const std::string pre_path = TempPath("pre_retrain.qcfa");
  ASSERT_TRUE(trainer->Save(pre_path).ok());

  std::vector<PlanSample> drifted = ScaledLabels(f->train, 64, 2.0);
  TrainConfig rt;
  rt.epochs = 2;
  rt.eval_every = 1;
  rt.eval_set.assign(f->test.begin(), f->test.begin() + 16);
  TrainStats rstats;
  ASSERT_TRUE(trainer->Retrain(drifted, rt, &rstats).ok());

  // The caller sees just this retrain; the pipeline merges with history.
  EXPECT_EQ(rstats.loss_curve.size(), 2u);
  const TrainStats& merged = trainer->train_stats();
  ASSERT_EQ(merged.loss_curve.size(), fit_epochs + 2);
  EXPECT_EQ(Bits({merged.loss_curve.back()}),
            Bits({rstats.loss_curve.back()}));
  EXPECT_GE(merged.train_seconds, rstats.train_seconds);
  // Eval epochs are offset past the fit-time curve.
  ASSERT_FALSE(rstats.eval_curve.empty());
  ASSERT_FALSE(merged.eval_curve.empty());
  EXPECT_EQ(merged.eval_curve.back().first,
            rstats.eval_curve.back().first + static_cast<int>(fit_epochs));

  // Retrain -> Explain reflects the full training, not the stale fit.
  const std::string explain = trainer->Explain();
  EXPECT_NE(explain.find(std::to_string(fit_epochs + 2) + " epochs"),
            std::string::npos)
      << explain;

  // Retrain -> Save -> Load round-trips the merged curve and the refreshed
  // drift baselines (artifact section kAdaptBaseline).
  const std::string post_path = TempPath("post_retrain.qcfa");
  ASSERT_TRUE(trainer->Save(post_path).ok());
  auto loaded = Pipeline::Load(f->ctx->db.get(), &f->ctx->envs,
                               &f->ctx->templates, post_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(Bits((*loaded)->train_stats().loss_curve),
            Bits(merged.loss_curve));
  EXPECT_EQ((*loaded)->env_baseline_qerror(), trainer->env_baseline_qerror());

  // The pre-retrain artifact still describes the pre-retrain fit.
  auto pre = Pipeline::Load(f->ctx->db.get(), &f->ctx->envs,
                            &f->ctx->templates, pre_path);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ((*pre)->train_stats().loss_curve.size(), fit_epochs);

  ASSERT_TRUE(Fs::Default()->RemoveFile(pre_path).ok());
  ASSERT_TRUE(Fs::Default()->RemoveFile(post_path).ok());
}

TEST(RetrainTest, BitIdenticalAcrossThreadCounts) {
  SharedFixtures* f = Fixtures();
  std::vector<PlanSample> drifted = ScaledLabels(f->train, 64, 2.0);
  std::vector<PlanSample> eval(f->test.begin(), f->test.begin() + 32);
  std::vector<std::vector<uint64_t>> bits;
  for (int threads : {1, 2, 4}) {
    PipelineConfig cfg = QppConfig();
    cfg.parallelism.num_threads = threads;
    auto p = f->ctx->FitPipeline(cfg, f->train);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    TrainConfig rt;
    rt.epochs = 3;
    ASSERT_TRUE((*p)->Retrain(drifted, rt, nullptr).ok());
    auto preds = (*p)->PredictBatch(eval);
    ASSERT_TRUE(preds.ok());
    bits.push_back(Bits(*preds));
  }
  EXPECT_EQ(bits[0], bits[1]);
  EXPECT_EQ(bits[0], bits[2]);
}

// ------------------------------------------------- the loop, end to end

TEST(AdaptE2ETest, DriftTripsBackgroundRetrainSwapAndRecovers) {
  SharedFixtures* f = Fixtures();
  std::unique_ptr<Pipeline> trainer = FitTrainer(f);
  const size_t fit_epochs = trainer->train_stats().loss_curve.size();
  const std::string path = TempPath("e2e.qcfa");
  ASSERT_TRUE(trainer->Save(path).ok());

  // Serving side: hot-swappable server under a FakeClock. Batches flush on
  // batch-full only (the fake deadline never arrives), so the test is
  // sleep-free and fully deterministic.
  FakeClock clock;
  SwappableModel models;
  AsyncServeConfig scfg;
  scfg.max_batch = 8;
  scfg.max_delay_micros = 1'000'000;
  auto server = Pipeline::ServeAsync(&models, scfg, &clock);

  SwapOptions init;
  init.probe.assign(f->test.begin(), f->test.begin() + 8);
  auto init_want = trainer->PredictBatch(init.probe);
  ASSERT_TRUE(init_want.ok());
  init.expected = *init_want;
  auto v1 = LoadAndSwap(f->ctx->db.get(), &f->ctx->envs, &f->ctx->templates,
                        path, init, &models, server.get());
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  std::shared_ptr<const Pipeline> old_gen = *v1;
  ASSERT_EQ(models.version(), 1u);

  adapt::AdaptationConfig acfg;
  acfg.window.window_capacity = 64;
  acfg.window.label_capacity = 256;
  acfg.drift.min_samples = 16;
  acfg.drift.ph_delta = 0.1;
  acfg.drift.ph_lambda = 8.0;
  acfg.evaluate_every = 8;
  acfg.min_retrain_samples = 32;
  acfg.retrain.epochs = 10;
  acfg.artifact_path = path;
  adapt::AdaptationController controller(trainer.get(), &models, acfg,
                                         server.get());
  server->set_observation_listener(&controller);

  // Submits full batches of 8 and reports each reply with the observed
  // latency scale * fit-time label; stops early once the detector trips.
  auto feed = [&](size_t begin, size_t count, double scale) {
    for (size_t base = begin; base < begin + count; base += 8) {
      std::vector<std::future<Result<double>>> futures;
      std::vector<size_t> idx;
      for (size_t k = 0; k < 8; ++k) {
        const size_t i = (base + k) % f->train.size();
        idx.push_back(i);
        futures.push_back(
            server->Submit(*f->train[i].plan, f->train[i].env_id));
      }
      for (size_t k = 0; k < 8; ++k) {
        Result<double> r = futures[k].get();
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        const PlanSample& s = f->train[idx[k]];
        server->ReportObserved(*s.plan, s.env_id, *r, scale * s.label_ms);
      }
      if (scale != 1.0 && controller.stats().drift_trips > 0) return;
    }
  };

  // Phase 1 — healthy traffic: observed latency equals the label the model
  // was fitted on, so windows hover at the fit-time baseline. No trips.
  feed(0, 64, 1.0);
  adapt::AdaptationStats healthy = controller.stats();
  EXPECT_EQ(healthy.observations, 64u);
  EXPECT_GT(healthy.windows_evaluated, 0u);
  EXPECT_EQ(healthy.drift_trips, 0u);
  EXPECT_EQ(models.version(), 1u);

  // Phase 2 — the world got 4x slower. The detector trips, the background
  // worker warm-start retrains on the buffered labeled samples, saves, and
  // publishes through LoadAndSwap.
  feed(64, 160, 4.0);
  controller.WaitForIdle();
  adapt::AdaptationStats drifted = controller.stats();
  EXPECT_GE(drifted.drift_trips, 1u);
  ASSERT_GE(drifted.swaps_published, 1u);
  EXPECT_EQ(drifted.cycles_skipped, 0u);
  EXPECT_EQ(drifted.retrain_failures, 0u);
  EXPECT_EQ(drifted.save_failures, 0u);
  EXPECT_EQ(drifted.swaps_rejected, 0u);
  EXPECT_TRUE(controller.last_cycle_status().ok())
      << controller.last_cycle_status().ToString();
  EXPECT_EQ(models.version(), 1u + drifted.swaps_published);
  AsyncServeStats sstats = server->stats();
  EXPECT_EQ(sstats.swaps_published, 1u + drifted.swaps_published);
  EXPECT_EQ(sstats.model_version, models.version());

  // Regression for the stale-train_stats_ bug, through the live loop: the
  // trainer's stats now cover fit + every adaptation retrain.
  EXPECT_EQ(trainer->train_stats().loss_curve.size(),
            fit_epochs + static_cast<size_t>(drifted.swaps_published) * 10u);

  // Recovery: on the drifted workload the published generation beats the
  // one it replaced.
  std::vector<PlanSample> drifted_eval = ScaledLabels(f->train, 64, 4.0);
  std::vector<double> actuals;
  for (const PlanSample& s : drifted_eval) actuals.push_back(s.label_ms);
  auto old_preds = old_gen->PredictBatch(drifted_eval);
  auto cur = models.Current();
  ASSERT_NE(cur, nullptr);
  auto new_preds = cur->PredictBatch(drifted_eval);
  ASSERT_TRUE(old_preds.ok() && new_preds.ok());
  const double q_old = Mean(QErrors(actuals, *old_preds));
  const double q_new = Mean(QErrors(actuals, *new_preds));
  EXPECT_LT(q_new, q_old) << "retrained model did not recover on the "
                             "drifted workload (old " << q_old << ", new "
                          << q_new << ")";

  // Replies after the swap are bit-identical to the trainer that produced
  // the published artifact.
  std::vector<PlanSample> probe(f->test.begin(), f->test.begin() + 8);
  auto want = trainer->PredictBatch(probe);
  ASSERT_TRUE(want.ok());
  std::vector<std::future<Result<double>>> futures;
  for (const PlanSample& s : probe) {
    futures.push_back(server->Submit(*s.plan, s.env_id));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<double> r = futures[i].get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(Bits({*r})[0], Bits({(*want)[i]})[0]) << i;
  }

  server->set_observation_listener(nullptr);
  controller.Stop();
  server->Shutdown();
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

// ------------------------------------------------------------ failure legs

/// Controller wired for manual cycles: drift auto-tripping is disabled
/// (huge min_samples) so the test drives RunCycleNow deterministically.
adapt::AdaptationConfig ManualCycleConfig(const std::string& path) {
  adapt::AdaptationConfig acfg;
  acfg.drift.min_samples = 1u << 20;
  acfg.min_retrain_samples = 16;
  acfg.retrain.epochs = 2;
  acfg.artifact_path = path;
  return acfg;
}

TEST(AdaptFailureTest, FailedSaveLeavesServingBitIdentical) {
  SharedFixtures* f = Fixtures();
  std::unique_ptr<Pipeline> trainer = FitTrainer(f);
  const std::string path = TempPath("fail_save.qcfa");
  FaultInjectingFs fs(Fs::Default());
  ASSERT_TRUE(trainer->Save(path, &fs).ok());

  SwappableModel models;
  auto v1 = LoadAndSwap(f->ctx->db.get(), &f->ctx->envs, &f->ctx->templates,
                        path, {}, &models, nullptr, &fs);
  ASSERT_TRUE(v1.ok());
  std::vector<PlanSample> probe(f->test.begin(), f->test.begin() + 8);
  auto before = models.Current()->PredictBatch(probe);
  ASSERT_TRUE(before.ok());

  adapt::AdaptationController controller(trainer.get(), &models,
                                         ManualCycleConfig(path), nullptr,
                                         &fs);
  std::vector<PlanSample> drifted = ScaledLabels(f->train, 32, 4.0);
  for (const PlanSample& s : drifted) {
    controller.OnObservation(*s.plan, s.env_id, s.label_ms / 4.0, s.label_ms);
  }

  // Every fsync fails: the retrain succeeds but the save cannot publish a
  // new artifact. Typed counter, serving version untouched.
  FaultInjectionConfig fault;
  fault.fail_fsync = true;
  fs.Arm(fault);
  Status cycle = controller.RunCycleNow();
  EXPECT_FALSE(cycle.ok());
  adapt::AdaptationStats stats = controller.stats();
  EXPECT_EQ(stats.cycles_started, 1u);
  EXPECT_EQ(stats.save_failures, 1u);
  EXPECT_EQ(stats.retrain_failures, 0u);
  EXPECT_EQ(stats.swaps_published, 0u);
  EXPECT_EQ(models.version(), 1u);
  auto after = models.Current()->PredictBatch(probe);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Bits(*before), Bits(*after));

  // The previously published artifact survived the failed save (atomic
  // rename): it still loads and still matches the serving version.
  fs.Arm(FaultInjectionConfig{});
  auto reload = Pipeline::Load(f->ctx->db.get(), &f->ctx->envs,
                               &f->ctx->templates, path, &fs);
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  auto reload_preds = (*reload)->PredictBatch(probe);
  ASSERT_TRUE(reload_preds.ok());
  EXPECT_EQ(Bits(*before), Bits(*reload_preds));

  controller.Stop();
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

TEST(AdaptFailureTest, RejectedSwapLeavesServingBitIdentical) {
  SharedFixtures* f = Fixtures();
  std::unique_ptr<Pipeline> trainer = FitTrainer(f);
  const std::string path = TempPath("reject_swap.qcfa");
  FaultInjectingFs fs(Fs::Default());
  ASSERT_TRUE(trainer->Save(path, &fs).ok());

  SwappableModel models;
  AsyncServeConfig scfg;
  auto server = Pipeline::ServeAsync(&models, scfg);
  auto v1 = LoadAndSwap(f->ctx->db.get(), &f->ctx->envs, &f->ctx->templates,
                        path, {}, &models, server.get(), &fs);
  ASSERT_TRUE(v1.ok());
  std::vector<PlanSample> probe(f->test.begin(), f->test.begin() + 8);
  auto before = models.Current()->PredictBatch(probe);
  ASSERT_TRUE(before.ok());

  adapt::AdaptationController controller(trainer.get(), &models,
                                         ManualCycleConfig(path),
                                         server.get(), &fs);
  std::vector<PlanSample> drifted = ScaledLabels(f->train, 32, 4.0);
  for (const PlanSample& s : drifted) {
    controller.OnObservation(*s.plan, s.env_id, s.label_ms / 4.0, s.label_ms);
  }

  // Reads are silently truncated: the retrained artifact saves fine, but
  // LoadAndSwap's validation rejects the candidate (CRC damage) and the
  // old version keeps serving.
  FaultInjectionConfig fault;
  fault.short_read_bytes = 100;
  fs.Arm(fault);
  Status cycle = controller.RunCycleNow();
  EXPECT_FALSE(cycle.ok());
  EXPECT_EQ(cycle.code(), StatusCode::kDataLoss) << cycle.ToString();
  adapt::AdaptationStats stats = controller.stats();
  EXPECT_EQ(stats.save_failures, 0u);
  EXPECT_EQ(stats.swaps_rejected, 1u);
  EXPECT_EQ(stats.swaps_published, 0u);
  EXPECT_EQ(models.version(), 1u);
  EXPECT_EQ(server->stats().swaps_rejected, 1u);
  auto after = models.Current()->PredictBatch(probe);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Bits(*before), Bits(*after));

  // With the fault cleared the very next cycle publishes: the loop heals
  // itself once I/O recovers.
  fs.Arm(FaultInjectionConfig{});
  ASSERT_TRUE(controller.RunCycleNow().ok())
      << controller.last_cycle_status().ToString();
  EXPECT_EQ(controller.stats().swaps_published, 1u);
  EXPECT_EQ(models.version(), 2u);

  controller.Stop();
  server->Shutdown();
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

// ------------------------------------------------------------------ stress

TEST(AdaptStressTest, ContinuousAdaptationServesOnlyWholeVersions) {
  SharedFixtures* f = Fixtures();
  std::unique_ptr<Pipeline> trainer = FitTrainer(f);
  const std::string path = TempPath("stress.qcfa");
  ASSERT_TRUE(trainer->Save(path).ok());

  SwappableModel models;
  AsyncServeConfig scfg;
  scfg.max_batch = 16;
  scfg.max_delay_micros = 200;
  scfg.num_workers = 2;
  auto server = Pipeline::ServeAsync(&models, scfg);
  auto v1 = LoadAndSwap(f->ctx->db.get(), &f->ctx->envs, &f->ctx->templates,
                        path, {}, &models, server.get());
  ASSERT_TRUE(v1.ok());

  const size_t kProbe = 16;
  std::vector<PlanSample> probe(f->test.begin(), f->test.begin() + kProbe);

  // Per-version prediction log. Slot v is written once, by the single
  // thread that published version v (the worker's on_publish hook or this
  // thread for v1), and read only after that thread is joined.
  constexpr size_t kMaxVersions = 256;
  std::vector<std::vector<uint64_t>> version_bits(kMaxVersions);
  {
    auto v1_preds = (*v1)->PredictBatch(probe);
    ASSERT_TRUE(v1_preds.ok());
    version_bits[1] = Bits(*v1_preds);
  }

  adapt::AdaptationConfig acfg;
  acfg.window.window_capacity = 32;
  acfg.window.label_capacity = 128;
  acfg.drift.min_samples = 8;
  acfg.drift.mean_ratio_threshold = 1.2;
  acfg.evaluate_every = 4;
  acfg.min_retrain_samples = 16;
  acfg.retrain.epochs = 1;
  acfg.probe_size = 4;
  acfg.artifact_path = path;
  acfg.on_publish = [&](const std::shared_ptr<const Pipeline>& p,
                        uint64_t version) {
    auto preds = p->PredictBatch(probe);
    QCFE_CHECK(preds.ok(), "stress on_publish predict failed");
    QCFE_CHECK(version < kMaxVersions, "stress ran away with versions");
    version_bits[version] = Bits(*preds);
  };
  adapt::AdaptationController controller(trainer.get(), &models, acfg,
                                         server.get());
  server->set_observation_listener(&controller);

  // Callers hammer the server and keep reporting 4x-drifted observations,
  // so adaptation cycles run continuously underneath the traffic.
  constexpr int kCallers = 4;
  constexpr int kRounds = 100;
  struct Reply {
    size_t index;
    uint64_t bits;
  };
  std::vector<std::vector<Reply>> replies(kCallers);
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t i = static_cast<size_t>((t + round) % kProbe);
        auto future = server->Submit(*probe[i].plan, probe[i].env_id);
        Result<double> r = future.get();
        if (!r.ok()) {
          ++failures;
          continue;
        }
        replies[static_cast<size_t>(t)].push_back({i, Bits({*r})[0]});
        server->ReportObserved(*probe[i].plan, probe[i].env_id, *r,
                               4.0 * probe[i].label_ms);
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  server->set_observation_listener(nullptr);
  controller.Stop();  // joins the worker: every publish is now logged
  server->Shutdown();

  adapt::AdaptationStats stats = controller.stats();
  EXPECT_GE(stats.swaps_published, 1u);
  EXPECT_EQ(stats.retrain_failures, 0u);
  EXPECT_EQ(stats.save_failures, 0u);
  EXPECT_EQ(stats.swaps_rejected, 0u);
  const uint64_t last_version = models.version();
  ASSERT_EQ(last_version, 1u + stats.swaps_published);

  // Every reply must bit-match exactly one published version's prediction
  // for its plan — a torn batch or half-applied swap would match none.
  int mismatches = 0;
  for (const auto& caller_replies : replies) {
    for (const Reply& reply : caller_replies) {
      bool matched = false;
      for (uint64_t v = 1; v <= last_version && !matched; ++v) {
        matched = !version_bits[v].empty() &&
                  version_bits[v][reply.index] == reply.bits;
      }
      if (!matched) ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(Fs::Default()->RemoveFile(path).ok());
}

}  // namespace
}  // namespace qcfe
