/// Reproduces paper Table V: robustness of the simplified-template scale.
/// For TPC-H and job-light, compares QCFE(qpp) accuracy and snapshot
/// label-collection cost between FSO (original queries) and FST at several
/// fill scales. Paper: FST reaches competitive q-error at a fraction of the
/// collection cost (TPCH 3.8h vs 7.7h; job-light ~11%).

#include <iostream>

#include "harness/evaluate.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qcfe {
namespace {

int RunBenchmark(const std::string& bench_name, int num_threads) {
  HarnessOptions opt = OptionsFor(bench_name, GetRunScale());
  opt.num_threads = num_threads;
  size_t scale = GetRunScale() == RunScale::kFull ? 4000 : 600;
  auto ctx = BenchmarkContext::Create(opt);
  if (!ctx.ok()) {
    std::cerr << ctx.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> train, test;
  (*ctx)->Split(scale, &train, &test);

  PrintBanner(std::cout, "Table V — template-scale robustness, " + bench_name);
  std::cout << "paper (" + bench_name + "): " +
                   (bench_name == "tpch"
                        ? std::string("FSO q=1.098 @7.7h; FST scale 4: "
                                      "q=1.096 @3.8h (123 templates)")
                        : std::string("FSO q=1.18 @31.8h; FST scale 8: "
                                      "q=1.187 @3.5h (19 templates)"))
            << "\n";

  // FSO plus the paper's per-benchmark FST scales.
  std::vector<int> fst_scales = bench_name == "joblight"
                                    ? std::vector<int>{2, 4, 6, 8}
                                    : std::vector<int>{1, 2, 3, 4};
  TablePrinter tp({"snapshot", "templates", "collect (sim ms)",
                   "mean q-error", "pearson"});
  auto run_variant = [&](const std::string& name, bool from_templates,
                         int snapshot_scale) -> Status {
    PipelineConfig cfg;
    cfg.estimator = "qppnet";
    cfg.use_snapshot = true;
    cfg.snapshot_from_templates = from_templates;
    cfg.snapshot_scale = snapshot_scale;
    cfg.use_reduction = true;
    cfg.pre_reduction_epochs = std::max(8, opt.qpp_epochs / 2);
    cfg.train.epochs = opt.qpp_epochs;
    cfg.seed = opt.seed * 23 + 7;
    Result<std::unique_ptr<Pipeline>> built = (*ctx)->FitPipeline(cfg, train);
    if (!built.ok()) return built.status();
    EvalResult eval = EvaluateModel(**built, test);
    tp.AddRow({name, std::to_string((*built)->snapshot_num_templates()),
               FormatDouble((*built)->snapshot_collection_ms(), 1),
               FormatDouble(eval.summary.mean_qerror, 3),
               FormatDouble(eval.summary.pearson, 3)});
    return Status::OK();
  };

  Status st = run_variant("FSO", false, 2);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  for (int s : fst_scales) {
    st = run_variant("FST(" + std::to_string(s) + ")", true, s);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  tp.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qcfe

int main(int argc, char** argv) {
  int threads = qcfe::ThreadsFromArgs(argc, argv);
  int rc = qcfe::RunBenchmark("tpch", threads);
  rc |= qcfe::RunBenchmark("joblight", threads);
  return rc;
}
