/// Reproduces paper Figure 7: how many features each reduction algorithm
/// removes, per physical operator, on TPC-H. Paper: Greedy removes ~1.2%,
/// GD ~41%, FR ~41% on average; FR removes up to 57 index-scan features
/// while Greedy removes 2; GD removes many (e.g. 101 for Sort) but with
/// wrong importance scores.

#include <iostream>

#include "harness/evaluate.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qcfe {
namespace {

int Run(int num_threads) {
  HarnessOptions opt = OptionsFor("tpch", GetRunScale());
  opt.num_threads = num_threads;
  size_t scale = GetRunScale() == RunScale::kFull ? 4000 : 400;
  auto ctx = BenchmarkContext::Create(opt);
  if (!ctx.ok()) {
    std::cerr << ctx.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> train, test;
  (*ctx)->Split(scale, &train, &test);

  // One provisional QCFE(qpp) model (snapshot on, no reduction) shared by
  // all three algorithms, exactly like the paper's ablation.
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.use_snapshot = true;
  cfg.snapshot_from_templates = false;  // FSO, as in the paper's Figure 7
  cfg.snapshot_scale = 2;
  cfg.use_reduction = false;
  cfg.train.epochs = std::max(10, opt.qpp_epochs);
  cfg.seed = opt.seed * 17 + 3;
  Result<std::unique_ptr<Pipeline>> built = (*ctx)->FitPipeline(cfg, train);
  if (!built.ok()) {
    std::cerr << built.status().ToString() << "\n";
    return 1;
  }

  PrintBanner(std::cout, "Figure 7 — features removed per operator (TPCH, "
                         "scale=" + std::to_string(scale) + ")");
  std::cout << "feature width per operator: "
            << (*built)->active_featurizer()->dim(OpType::kSeqScan)
            << " dims\npaper: Greedy ~1.2% removed, GD >41%, FR >41%; FR "
               "removes 57 Index Scan features, Greedy only 2\n";

  TablePrinter tp({"operator", "Greedy removed", "GD removed", "FR removed"});
  std::map<ReductionAlgorithm, ReductionResult> results;
  for (ReductionAlgorithm algo :
       {ReductionAlgorithm::kGreedy, ReductionAlgorithm::kGradient,
        ReductionAlgorithm::kDiffProp}) {
    ReductionConfig rcfg;
    rcfg.algorithm = algo;
    Result<ReductionResult> r = ReduceFeatures((*built)->model(), train, rcfg);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    results[algo] = std::move(r.value());
  }
  for (OpType op : AllOpTypes()) {
    auto count = [&](ReductionAlgorithm algo) {
      const auto& per_op = results[algo].per_op;
      auto it = per_op.find(op);
      return it == per_op.end() ? std::string("-")
                                : std::to_string(it->second.dropped);
    };
    tp.AddRow({OpTypeName(op), count(ReductionAlgorithm::kGreedy),
               count(ReductionAlgorithm::kGradient),
               count(ReductionAlgorithm::kDiffProp)});
  }
  tp.Print(std::cout);
  std::cout << "overall reduction ratio: Greedy "
            << FormatDouble(
                   100.0 * results[ReductionAlgorithm::kGreedy].ReductionRatio(), 1)
            << "% | GD "
            << FormatDouble(
                   100.0 * results[ReductionAlgorithm::kGradient].ReductionRatio(),
                   1)
            << "% | FR "
            << FormatDouble(
                   100.0 * results[ReductionAlgorithm::kDiffProp].ReductionRatio(),
                   1)
            << "%\n";
  return 0;
}

}  // namespace
}  // namespace qcfe

int main(int argc, char** argv) {
  return qcfe::Run(qcfe::ThreadsFromArgs(argc, argv));
}
