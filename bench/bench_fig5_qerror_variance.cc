/// Reproduces paper Figure 5: the q-error distribution (25th/50th/75th
/// percentile boxes, plus 90th) of the learned estimators with and without
/// QCFE, per benchmark and labeled-set scale. The paper's claim: QCFE
/// variants show tighter boxes (lower variance) at every scale.

#include <iostream>

#include "harness/evaluate.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qcfe {
namespace {

int RunBenchmark(const std::string& bench_name, int num_threads) {
  HarnessOptions opt = OptionsFor(bench_name, GetRunScale());
  opt.num_threads = num_threads;
  // The box plot needs the scale sweep but not the PGSQL row.
  std::vector<size_t> scales = GetRunScale() == RunScale::kFull
                                   ? opt.scales
                                   : std::vector<size_t>{400, 1000};
  auto ctx = BenchmarkContext::Create(opt);
  if (!ctx.ok()) {
    std::cerr << ctx.status().ToString() << "\n";
    return 1;
  }
  PrintBanner(std::cout,
              "Figure 5 — q-error box data, " + bench_name + " (" +
                  RunScaleName() + " scale)");
  std::cout << "paper reference (50th percentile, TPCH): QCFE(qpp) 1.048 vs "
               "QPPNet 1.084; Sysbench: 1.308 vs 9.16; job-light: 1.084 vs "
               "1.167\n";

  TablePrinter tp({"scale", "model", "q25", "q50", "q75", "q90"});
  for (size_t scale : scales) {
    std::vector<PlanSample> train, test;
    (*ctx)->Split(scale, &train, &test);
    for (const CellConfig& cell : TableIvModels(opt)) {
      if (cell.estimator == "pgsql") continue;
      Result<CellResult> res = RunCell(ctx->get(), cell, train, test);
      if (!res.ok()) {
        std::cerr << res.status().ToString() << "\n";
        return 1;
      }
      const MetricSummary& s = res->eval.summary;
      tp.AddRow({std::to_string(scale), res->model_name,
                 FormatDouble(s.q25, 3), FormatDouble(s.median_qerror, 3),
                 FormatDouble(s.q75, 3), FormatDouble(s.q90, 3)});
    }
  }
  tp.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qcfe

int main(int argc, char** argv) {
  int threads = qcfe::ThreadsFromArgs(argc, argv);
  int rc = 0;
  for (const auto& bench : qcfe::AllBenchmarkNames()) {
    rc |= qcfe::RunBenchmark(bench, threads);
  }
  return rc;
}
