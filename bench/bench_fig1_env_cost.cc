/// Reproduces paper Figure 1: the average query cost (ms) of the same query
/// set under five different database knob configurations, for TPC-H and
/// Sysbench. The paper's point: environment alone shifts mean latency by
/// ~2x (TPC-H) and ~3x (Sysbench), so cost models that ignore it are blind
/// to a first-order effect.

#include <iostream>

#include "harness/context.h"
#include "sql/data_abstract.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qcfe {
namespace {

void RunBenchmark(const std::string& name, size_t num_queries) {
  HarnessOptions opt = OptionsFor(name, GetRunScale());
  opt.num_envs = 5;  // Figure 1 uses five configurations
  Result<std::unique_ptr<BenchmarkWorkload>> bench = MakeBenchmark(name);
  auto db = (*bench)->BuildDatabase(opt.scale_factor, opt.seed);
  auto envs = EnvironmentSampler::Sample(5, HardwareProfile::H1(),
                                         opt.seed * 31 + 5);
  auto templates = (*bench)->Templates();
  DataAbstract abstract(db->catalog());

  // The same concrete queries run under every environment.
  std::vector<QuerySpec> specs;
  Rng rng(opt.seed);
  for (size_t i = 0; i < num_queries; ++i) {
    auto spec = templates[i % templates.size()].Instantiate(abstract, &rng);
    if (!spec.ok()) {
      std::cerr << spec.status().ToString() << "\n";
      return;
    }
    specs.push_back(std::move(spec.value()));
  }

  TablePrinter tp({"environment", "knobs", "avg cost (ms)"});
  std::vector<double> means;
  for (const auto& env : envs) {
    Rng noise(opt.seed + 99);
    std::vector<double> costs;
    for (const auto& spec : specs) {
      auto run = db->Run(spec, env, &noise);
      if (!run.ok()) continue;
      costs.push_back(run->total_ms);
    }
    means.push_back(Mean(costs));
    std::string knobs = env.knobs.ToString();
    tp.AddRow({"env" + std::to_string(env.id), knobs.substr(0, 64),
               FormatDouble(means.back(), 3)});
  }
  double lo = *std::min_element(means.begin(), means.end());
  double hi = *std::max_element(means.begin(), means.end());

  PrintBanner(std::cout, "Figure 1 — " + name + " (" +
                             std::to_string(specs.size()) + " queries, " +
                             RunScaleName() + " scale)");
  tp.Print(std::cout);
  std::cout << "max/min mean-cost ratio: " << FormatDouble(hi / lo, 2)
            << "   (paper: ~" << (name == "tpch" ? "2" : "3")
            << "x across environments)\n";
}

}  // namespace
}  // namespace qcfe

int main() {
  size_t n = qcfe::ScaledCount(1000, 4, 200);
  qcfe::RunBenchmark("tpch", n);
  qcfe::RunBenchmark("sysbench", n);
  return 0;
}
