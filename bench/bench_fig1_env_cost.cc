/// Reproduces paper Figure 1: the average query cost (ms) of the same query
/// set under five different database knob configurations, for TPC-H and
/// Sysbench. The paper's point: environment alone shifts mean latency by
/// ~2x (TPC-H) and ~3x (Sysbench), so cost models that ignore it are blind
/// to a first-order effect.

#include <iostream>

#include "harness/context.h"
#include "sql/data_abstract.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qcfe {
namespace {

void RunBenchmark(const std::string& name, size_t num_queries,
                  int num_threads) {
  HarnessOptions opt = OptionsFor(name, GetRunScale());
  opt.num_envs = 5;  // Figure 1 uses five configurations
  opt.num_threads = num_threads;
  Result<std::unique_ptr<BenchmarkWorkload>> bench = MakeBenchmark(name);
  auto db = (*bench)->BuildDatabase(opt.scale_factor, opt.seed);
  auto envs = EnvironmentSampler::Sample(5, HardwareProfile::H1(),
                                         opt.seed * 31 + 5);
  auto templates = (*bench)->Templates();
  DataAbstract abstract(db->catalog());

  // The same concrete queries run under every environment.
  std::vector<QuerySpec> specs;
  Rng rng(opt.seed);
  for (size_t i = 0; i < num_queries; ++i) {
    auto spec = templates[i % templates.size()].Instantiate(abstract, &rng);
    if (!spec.ok()) {
      std::cerr << spec.status().ToString() << "\n";
      return;
    }
    specs.push_back(std::move(spec.value()));
  }

  // Price the whole (environment, query) grid through the parallel
  // collection path; with --threads=1 this is the plain serial sweep.
  // Deliberately fail-fast: a spec that cannot execute would skew the
  // per-environment means, and workload_test guarantees every template
  // instantiation runs, so an error here is a bug worth surfacing.
  std::unique_ptr<ThreadPool> pool;
  if (ResolveNumThreads(opt.num_threads) > 1) {
    pool = std::make_unique<ThreadPool>(opt.num_threads);
  }
  QueryCollector collector(db.get(), &envs);
  auto sets = collector.RunSpecsGrid(specs, envs, opt.seed + 99, pool.get());
  if (!sets.ok()) {
    std::cerr << sets.status().ToString() << "\n";
    return;
  }

  TablePrinter tp({"environment", "knobs", "avg cost (ms)"});
  std::vector<double> means;
  for (size_t e = 0; e < envs.size(); ++e) {
    const Environment& env = envs[e];
    std::vector<double> costs;
    for (const auto& q : (*sets)[e].queries) costs.push_back(q.total_ms);
    means.push_back(Mean(costs));
    std::string knobs = env.knobs.ToString();
    tp.AddRow({"env" + std::to_string(env.id), knobs.substr(0, 64),
               FormatDouble(means.back(), 3)});
  }
  double lo = *std::min_element(means.begin(), means.end());
  double hi = *std::max_element(means.begin(), means.end());

  PrintBanner(std::cout, "Figure 1 — " + name + " (" +
                             std::to_string(specs.size()) + " queries, " +
                             RunScaleName() + " scale)");
  tp.Print(std::cout);
  std::cout << "max/min mean-cost ratio: " << FormatDouble(hi / lo, 2)
            << "   (paper: ~" << (name == "tpch" ? "2" : "3")
            << "x across environments)\n";
}

}  // namespace
}  // namespace qcfe

int main(int argc, char** argv) {
  int threads = qcfe::ThreadsFromArgs(argc, argv);
  size_t n = qcfe::ScaledCount(1000, 4, 200);
  qcfe::RunBenchmark("tpch", n, threads);
  qcfe::RunBenchmark("sysbench", n, threads);
  return 0;
}
