/// Reproduces paper Figure 6: the QCFE ablation on QPPNet at scale 4000
/// (quick: 400) — FSO (snapshot from original queries), FST (snapshot from
/// simplified templates), FSO+FR (difference propagation), FSO+GD
/// (gradient), FSO+Greedy. The paper's claims: FST matches FSO accuracy;
/// FR beats GD and Greedy.

#include <iostream>

#include "harness/evaluate.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qcfe {
namespace {

struct Variant {
  std::string name;
  bool from_templates = false;
  bool reduce = false;
  ReductionAlgorithm algo = ReductionAlgorithm::kDiffProp;
};

int RunBenchmark(const std::string& bench_name, int num_threads) {
  HarnessOptions opt = OptionsFor(bench_name, GetRunScale());
  opt.num_threads = num_threads;
  size_t scale = GetRunScale() == RunScale::kFull ? 4000 : 400;
  auto ctx = BenchmarkContext::Create(opt);
  if (!ctx.ok()) {
    std::cerr << ctx.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> train, test;
  (*ctx)->Split(scale, &train, &test);

  PrintBanner(std::cout, "Figure 6 — ablation (QPPNet), " + bench_name +
                             ", scale=" + std::to_string(scale));
  std::cout << "paper mean q-error (TPCH / Sysbench / job-light): "
               "FSO 1.098/1.715/1.180, FST 1.109/1.781/1.222; FR beats GD "
               "and Greedy (TPCH 50th: FR 1.24 vs GD 1.44)\n";

  const std::vector<Variant> variants = {
      {"FSO", false, false, ReductionAlgorithm::kDiffProp},
      {"FST", true, false, ReductionAlgorithm::kDiffProp},
      {"FSO+FR", false, true, ReductionAlgorithm::kDiffProp},
      {"FSO+GD", false, true, ReductionAlgorithm::kGradient},
      {"FSO+Greedy", false, true, ReductionAlgorithm::kGreedy},
  };

  TablePrinter tp({"variant", "mean q-error", "q50", "q90", "train (s)",
                   "reduction"});
  for (const Variant& v : variants) {
    PipelineConfig cfg;
    cfg.estimator = "qppnet";
    cfg.use_snapshot = true;
    cfg.snapshot_from_templates = v.from_templates;
    cfg.snapshot_scale = 2;
    cfg.use_reduction = v.reduce;
    cfg.reduction.algorithm = v.algo;
    cfg.pre_reduction_epochs = std::max(8, opt.qpp_epochs / 2);
    cfg.train.epochs = opt.qpp_epochs;
    cfg.seed = opt.seed * 11 + 1;
    Result<std::unique_ptr<Pipeline>> built = (*ctx)->FitPipeline(cfg, train);
    if (!built.ok()) {
      std::cerr << v.name << ": " << built.status().ToString() << "\n";
      return 1;
    }
    EvalResult eval = EvaluateModel(**built, test);
    tp.AddRow({v.name, FormatDouble(eval.summary.mean_qerror, 3),
               FormatDouble(eval.summary.median_qerror, 3),
               FormatDouble(eval.summary.q90, 3),
               FormatDouble((*built)->train_stats().train_seconds, 2),
               v.reduce
                   ? FormatDouble(
                         100.0 * (*built)->reduction().ReductionRatio(), 1) +
                         "%"
                   : "-"});
  }
  tp.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qcfe

int main(int argc, char** argv) {
  int threads = qcfe::ThreadsFromArgs(argc, argv);
  int rc = 0;
  for (const auto& bench : qcfe::AllBenchmarkNames()) {
    rc |= qcfe::RunBenchmark(bench, threads);
  }
  return rc;
}
