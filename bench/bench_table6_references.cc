/// Reproduces paper Table VI: robustness of the number of references in
/// difference-propagation reduction (TPCH, QCFE(qpp)). Paper: q-error
/// improves slightly with more references, FR runtime grows linearly, and
/// the reduction ratio is stable around 40%.

#include <iostream>

#include "harness/evaluate.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qcfe {
namespace {

int Run(int num_threads) {
  HarnessOptions opt = OptionsFor("tpch", GetRunScale());
  opt.num_threads = num_threads;
  size_t scale = GetRunScale() == RunScale::kFull ? 2000 : 600;
  auto ctx = BenchmarkContext::Create(opt);
  if (!ctx.ok()) {
    std::cerr << ctx.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> train, test;
  (*ctx)->Split(scale, &train, &test);

  // Shared provisional model (snapshot, no reduction yet).
  PipelineConfig base_cfg;
  base_cfg.estimator = "qppnet";
  base_cfg.use_snapshot = true;
  base_cfg.snapshot_from_templates = true;
  base_cfg.snapshot_scale = 2;
  base_cfg.use_reduction = false;
  base_cfg.train.epochs = std::max(8, opt.qpp_epochs / 2);
  base_cfg.seed = opt.seed * 29 + 11;
  Result<std::unique_ptr<Pipeline>> provisional =
      (*ctx)->FitPipeline(base_cfg, train);
  if (!provisional.ok()) {
    std::cerr << provisional.status().ToString() << "\n";
    return 1;
  }

  PrintBanner(std::cout, "Table VI — number of references (TPCH, QCFE(qpp), "
                         "scale=" + std::to_string(scale) + ")");
  std::cout << "paper: N=200..500 -> mean q-error 1.107..1.076, runtime "
               "268s..912s (linear), reduction ratio ~40% throughout\n";

  std::vector<size_t> reference_counts =
      GetRunScale() == RunScale::kFull
          ? std::vector<size_t>{200, 250, 300, 400, 500}
          : std::vector<size_t>{16, 32, 64, 128, 256};

  TablePrinter tp({"references", "mean q-error", "q95", "q90", "FR runtime (s)",
                   "reduction ratio"});
  for (size_t n_refs : reference_counts) {
    ReductionConfig rcfg;
    rcfg.algorithm = ReductionAlgorithm::kDiffProp;
    rcfg.num_references = n_refs;
    Result<ReductionResult> reduction =
        ReduceFeatures((*provisional)->model(), train, rcfg);
    if (!reduction.ok()) {
      std::cerr << reduction.status().ToString() << "\n";
      return 1;
    }
    // Retrain on the reduced features, instantiating through the registry.
    MaskedFeaturizer masked((*provisional)->active_featurizer(),
                            reduction->KeptMap(false));
    Result<std::unique_ptr<CostModel>> reduced =
        EstimatorRegistry::Global().Create(
            "qppnet",
            {(*ctx)->db->catalog(), &masked, base_cfg.seed + n_refs});
    if (!reduced.ok()) {
      std::cerr << reduced.status().ToString() << "\n";
      return 1;
    }
    TrainConfig tc;
    tc.epochs = opt.qpp_epochs;
    Status st = (*reduced)->Train(train, tc, nullptr);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    EvalResult eval = EvaluateModel(**reduced, test);
    tp.AddRow({std::to_string(n_refs),
               FormatDouble(eval.summary.mean_qerror, 3),
               FormatDouble(eval.summary.q95, 3),
               FormatDouble(eval.summary.q90, 3),
               FormatDouble(reduction->runtime_seconds, 3),
               FormatDouble(100.0 * reduction->ReductionRatio(), 1) + "%"});
  }
  tp.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qcfe

int main(int argc, char** argv) {
  return qcfe::Run(qcfe::ThreadsFromArgs(argc, argv));
}
