/// Reproduces paper Figure 8: prediction-error trajectories over training
/// iterations for (a) a model trained directly on the new hardware h2 and
/// (b) the transferable model (basis trained on h1, snapshot swapped for
/// h2). Paper: the transferable model reaches the direct model's accuracy
/// with ~25% of the training time.

#include <iostream>

#include "harness/evaluate.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qcfe {
namespace {

int RunBenchmark(const std::string& bench_name, int num_threads) {
  HarnessOptions opt = OptionsFor(bench_name, GetRunScale());
  opt.num_threads = num_threads;
  size_t basis_scale = GetRunScale() == RunScale::kFull ? 10000 : 800;
  size_t h2_size = GetRunScale() == RunScale::kFull ? 2500 : 320;
  int epochs = std::max(12, opt.qpp_epochs);

  auto ctx = BenchmarkContext::Create(opt);
  if (!ctx.ok()) {
    std::cerr << ctx.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> h1_train, h1_test;
  (*ctx)->Split(basis_scale, &h1_train, &h1_test);

  std::vector<Environment> h2_envs = EnvironmentSampler::Sample(
      opt.num_envs, HardwareProfile::H2(), opt.seed * 53 + 3);
  for (auto& e : h2_envs) e.id += 100;
  QueryCollector collector((*ctx)->db.get(), &h2_envs);
  Result<LabeledQuerySet> h2_corpus =
      collector.Collect((*ctx)->templates, h2_size, opt.seed * 59 + 7);
  if (!h2_corpus.ok()) {
    std::cerr << h2_corpus.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> h2_train, h2_test;
  for (size_t i = 0; i < h2_corpus->queries.size(); ++i) {
    const LabeledQuery& q = h2_corpus->queries[i];
    (i < h2_size * 4 / 5 ? h2_train : h2_test)
        .push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  auto cfg_for = [&](uint64_t seed_off) {
    PipelineConfig cfg;
    cfg.estimator = "qppnet";
    cfg.use_snapshot = true;
    cfg.snapshot_from_templates = true;
    cfg.snapshot_scale = 2;
    cfg.use_reduction = true;
    cfg.pre_reduction_epochs = std::max(8, epochs / 2);
    cfg.train.epochs = epochs;
    cfg.seed = opt.seed * 61 + seed_off;
    return cfg;
  };

  // Direct model: trained on h2 from scratch, tracing test q-error.
  std::vector<std::pair<int, double>> direct_curve;
  {
    PipelineConfig cfg = cfg_for(1);
    cfg.train.eval_every = 1;
    cfg.train.eval_set = h2_test;
    Result<std::unique_ptr<Pipeline>> direct = Pipeline::Fit(
        (*ctx)->db.get(), &h2_envs, &(*ctx)->templates, cfg, h2_train);
    if (!direct.ok()) {
      std::cerr << direct.status().ToString() << "\n";
      return 1;
    }
    direct_curve = (*direct)->train_stats().eval_curve;
  }

  // Transferable model: basis on h1, FST snapshot for h2, warm retrain.
  std::vector<std::pair<int, double>> transfer_curve;
  {
    PipelineConfig cfg = cfg_for(2);
    Result<std::unique_ptr<Pipeline>> basis = (*ctx)->FitPipeline(cfg, h1_train);
    if (!basis.ok()) {
      std::cerr << basis.status().ToString() << "\n";
      return 1;
    }
    Status st = (*basis)->ExtendSnapshots(h2_envs, /*from_templates=*/true,
                                          cfg.snapshot_scale, cfg.seed + 5);
    // kAlreadyExists = cached envs were deliberately refit; proceed.
    if (!st.ok() && st.code() != StatusCode::kAlreadyExists) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    TrainConfig retrain;
    retrain.epochs = epochs;
    retrain.eval_every = 1;
    retrain.eval_set = h2_test;
    retrain.seed = cfg.seed + 6;
    TrainStats stats;
    st = (*basis)->Retrain(h2_train, retrain, &stats);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    transfer_curve = stats.eval_curve;
  }

  PrintBanner(std::cout, "Figure 8 — convergence on new hardware, " +
                             bench_name);
  std::cout << "paper: the transferable model reaches the direct model's "
               "accuracy in ~25% of the training iterations\n";
  TablePrinter tp({"epoch", "direct q-error", "transfer q-error"});
  for (size_t i = 0; i < direct_curve.size(); ++i) {
    tp.AddRow({std::to_string(direct_curve[i].first),
               FormatDouble(direct_curve[i].second, 3),
               i < transfer_curve.size()
                   ? FormatDouble(transfer_curve[i].second, 3)
                   : "-"});
  }
  tp.Print(std::cout);

  // Crossover summary: first epoch where each curve reaches within 10% of
  // the direct model's final q-error.
  double target = direct_curve.empty() ? 0.0
                                       : direct_curve.back().second * 1.10;
  auto first_reach = [&](const std::vector<std::pair<int, double>>& curve) {
    for (const auto& [epoch, qe] : curve) {
      if (qe <= target) return epoch;
    }
    return curve.empty() ? 0 : curve.back().first;
  };
  std::cout << "epochs to reach 110% of direct final q-error: direct="
            << first_reach(direct_curve)
            << " transfer=" << first_reach(transfer_curve) << "\n";
  return 0;
}

}  // namespace
}  // namespace qcfe

int main(int argc, char** argv) {
  int threads = qcfe::ThreadsFromArgs(argc, argv);
  int rc = qcfe::RunBenchmark("tpch", threads);
  if (qcfe::GetRunScale() == qcfe::RunScale::kFull) {
    rc |= qcfe::RunBenchmark("joblight", threads);
  }
  return rc;
}
