/// Reproduces paper Table IV: the time-accuracy efficiency of PGSQL, MSCN,
/// QPPNet, QCFE(mscn) and QCFE(qpp) across labeled-set scales on TPC-H,
/// Sysbench and job-light. For each (benchmark, scale, model) cell the
/// harness reports the pearson coefficient, mean q-error and training time.
///
/// Shape criteria (DESIGN.md): learned models beat PGSQL by orders of
/// magnitude on q-error; QCFE variants match or beat their base models on
/// accuracy with lower training time.

#include <iostream>

#include "harness/evaluate.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qcfe {
namespace {

void PrintPaperReference(const std::string& bench) {
  std::cout << "paper (scale=10000): ";
  if (bench == "tpch") {
    std::cout << "PGSQL p=0.632 q=1179.2 | QCFE(mscn) p=0.997 q=1.11 | "
                 "QCFE(qpp) p=0.969 q=1.096 | MSCN p=0.987 q=1.134 | "
                 "QPPNet p=0.966 q=1.128\n";
  } else if (bench == "sysbench") {
    std::cout << "PGSQL p=0.283 q=938706 | QCFE(mscn) p=0.721 q=1.57 | "
                 "QCFE(qpp) p=0.787 q=2.01 | MSCN p=0.648 q=1.785 | "
                 "QPPNet p=0.633 q=32.64\n";
  } else {
    std::cout << "PGSQL p=0.376 q=148.1 | QCFE(mscn) p=0.998 q=1.046 | "
                 "QCFE(qpp) p=0.996 q=1.243 | MSCN p=0.994 q=1.07 | "
                 "QPPNet p=0.992 q=1.261\n";
  }
}

int RunBenchmark(const std::string& bench_name, int num_threads) {
  HarnessOptions opt = OptionsFor(bench_name, GetRunScale());
  opt.num_threads = num_threads;
  auto ctx = BenchmarkContext::Create(opt);
  if (!ctx.ok()) {
    std::cerr << ctx.status().ToString() << "\n";
    return 1;
  }
  PrintBanner(std::cout, "Table IV — " + bench_name + " (" + RunScaleName() +
                             " scale, " + std::to_string(opt.num_envs) +
                             " environments)");
  PrintPaperReference(bench_name);

  TablePrinter tp({"scale", "model", "pearson", "mean q-error", "train (s)",
                   "infer (s)"});
  for (size_t scale : opt.scales) {
    std::vector<PlanSample> train, test;
    (*ctx)->Split(scale, &train, &test);
    for (const CellConfig& cell : TableIvModels(opt)) {
      Result<CellResult> res = RunCell(ctx->get(), cell, train, test);
      if (!res.ok()) {
        std::cerr << cell.display_name << ": " << res.status().ToString()
                  << "\n";
        return 1;
      }
      tp.AddRow({std::to_string(scale), res->model_name,
                 FormatDouble(res->eval.summary.pearson, 3),
                 FormatDouble(res->eval.summary.mean_qerror, 3),
                 FormatDouble(res->train_seconds, 2),
                 FormatDouble(res->eval.inference_seconds, 4)});
    }
  }
  tp.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qcfe

int main(int argc, char** argv) {
  int threads = qcfe::ThreadsFromArgs(argc, argv);
  int rc = 0;
  for (const auto& bench : qcfe::AllBenchmarkNames()) {
    rc |= qcfe::RunBenchmark(bench, threads);
  }
  return rc;
}
