/// Micro benchmarks (google-benchmark) for the performance-critical pieces:
/// B+-tree operations, query planning/execution, model inference, snapshot
/// fitting and difference-propagation reduction. These back the inference
/// time columns of Table IV and the runtime column of Table VI.
///
/// The *Threads benchmarks sweep the thread-pool parallelism layer
/// (Pipeline::Fit wall-time and batched serving throughput at 1/2/4/8
/// workers), the *KernelMode benchmarks plus the KernelGemm sweep measure
/// the register-blocked kernel layer against the historical reference
/// loops (before/after in one binary), and the *AsyncThroughput benchmarks
/// measure the micro-batching front end against one-at-a-time PredictMs
/// under 8 concurrent callers. Best observed timings are written to
/// BENCH_parallel.json (machine-readable) when a run includes them, e.g.
///   bench_micro --benchmark_filter='Threads|Kernel|Async'
/// Sections absent from the current run are preserved from an existing
/// BENCH_parallel.json, so partial reruns never erase other sweeps.
///
/// `bench_micro --smoke` skips benchmarking and instead runs the kernel
/// parity sweep end to end, once per ISA tier available on this machine:
/// under the scalar tier every kernel/dispatch-mode combination must match
/// the reference loops bit for bit (plus a short two-mode training loop);
/// under each SIMD tier the same sweep is gated at kSimdRelTolerance and
/// the per-tier max relative error is reported, plus a three-mode training
/// loop proving dispatch is bit-invisible *within* the tier. Exits
/// non-zero on any violation — the CI gate for the kernel layer. (The
/// QCFE_KERNEL_ISA pin selects the tier used by ordinary dispatch; the
/// smoke gate still sweeps every tier the hardware and build provide.)
///
/// The *KernelIsa benchmarks measure the scalar tier against the detected
/// SIMD tier (dense GEMM at the real layer shapes, plus whole-model train
/// and batched serving) and are written to the `kernels_simd` section of
/// BENCH_parallel.json together with the autotuned dispatch thresholds.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <fstream>  // qcfe-lint: allow(no-raw-file-io) -- benchmark result recorder, not model-artifact I/O
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adapt/drift_detector.h"
#include "core/feature_reduction.h"
#include "core/feature_snapshot.h"
#include "engine/btree.h"
#include "harness/evaluate.h"
#include "models/registry.h"
#include "nn/kernels.h"
#include "nn/matrix.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "serve/async_server.h"
#include "serve/model_swap.h"
#include "util/check.h"
#include "util/fs.h"
#include "util/rng.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace qcfe {
namespace {

// Shared lazy fixture: a small sysbench context + trained QPPNet/MSCN, both
// instantiated through the estimator registry like any serving deployment.
struct MicroFixture {
  std::unique_ptr<BenchmarkContext> ctx;
  std::vector<PlanSample> train, test;
  std::unique_ptr<BaseFeaturizer> featurizer;
  std::unique_ptr<CostModel> qpp;
  std::unique_ptr<CostModel> mscn;

  static MicroFixture& Get() {
    static MicroFixture* fixture = [] {
      auto* f = new MicroFixture();
      HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
      opt.corpus_size = 400;
      auto ctx = BenchmarkContext::Create(opt);
      f->ctx = std::move(ctx.value());
      f->ctx->Split(400, &f->train, &f->test);
      f->featurizer = std::make_unique<BaseFeaturizer>(f->ctx->db->catalog());
      EstimatorRegistry& registry = EstimatorRegistry::Global();
      f->qpp = std::move(registry
                             .Create("qppnet", {f->ctx->db->catalog(),
                                                f->featurizer.get(), 1})
                             .value());
      f->mscn = std::move(registry
                              .Create("mscn", {f->ctx->db->catalog(),
                                               f->featurizer.get(), 2})
                              .value());
      TrainConfig cfg;
      cfg.epochs = 8;
      QCFE_CHECK_OK(f->qpp->Train(f->train, cfg, nullptr));
      QCFE_CHECK_OK(f->mscn->Train(f->train, cfg, nullptr));
      return f;
    }();
    return *fixture;
  }

  /// `n` serving requests drawn by cycling the test split (80 distinct
  /// queries). Batches up to 80 are fully distinct; larger batches model
  /// templated serving traffic where requests repeat (~3.2x at n=256) and
  /// the batched path's request dedup kicks in on top of matrix batching.
  std::vector<PlanSample> BatchOf(size_t n) const {
    std::vector<PlanSample> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) batch.push_back(test[i % test.size()]);
    return batch;
  }
};

void BM_MatMul(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a(n, n), b(n, n);
  a.RandomizeGaussian(&rng, 1.0);
  b.RandomizeGaussian(&rng, 1.0);
  for (auto _ : state) {
    Matrix c = Matrix::MatMul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128);

void BM_BTreeBulkLoad(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<std::pair<double, uint32_t>> entries;
  for (uint32_t i = 0; i < n; ++i) {
    entries.emplace_back(rng.Uniform(0, 1e6), i);
  }
  for (auto _ : state) {
    BPlusTree tree;
    tree.BulkLoad(entries);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeBulkLoad)->Arg(10000)->Arg(100000);

void BM_BTreeRangeScan(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::pair<double, uint32_t>> entries;
  for (uint32_t i = 0; i < 100000; ++i) {
    entries.emplace_back(static_cast<double>(i), i);
  }
  BPlusTree tree;
  tree.BulkLoad(std::move(entries));
  for (auto _ : state) {
    std::vector<uint32_t> out;
    double lo = rng.Uniform(0, 90000);
    tree.RangeScan(lo, true, lo + 1000, true, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BTreeRangeScan);

void BM_PlanQuery(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  QuerySpec spec;
  spec.tables = {"sbtest1"};
  Predicate p;
  p.column = {"sbtest1", "id"};
  p.op = CompareOp::kBetween;
  p.literals = {Value(int64_t{100}), Value(int64_t{199})};
  spec.filters = {p};
  Knobs knobs;
  for (auto _ : state) {
    auto plan = f.ctx->db->Plan(spec, knobs);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_PlanQuery);

void BM_ExecuteQueryCached(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  QuerySpec spec;
  spec.tables = {"sbtest1"};
  Predicate p;
  p.column = {"sbtest1", "id"};
  p.op = CompareOp::kBetween;
  p.literals = {Value(int64_t{100}), Value(int64_t{199})};
  spec.filters = {p};
  Environment env;
  env.hardware = HardwareProfile::H1();
  Rng noise(5);
  for (auto _ : state) {
    auto run = f.ctx->db->Run(spec, env, &noise);
    benchmark::DoNotOptimize(run.ok());
  }
}
BENCHMARK(BM_ExecuteQueryCached);

void BM_QppNetInference(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const PlanSample& s = f.test[i++ % f.test.size()];
    auto p = f.qpp->PredictMs(*s.plan, s.env_id);
    benchmark::DoNotOptimize(p.ok());
  }
}
BENCHMARK(BM_QppNetInference);

void BM_MscnInference(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const PlanSample& s = f.test[i++ % f.test.size()];
    auto p = f.mscn->PredictMs(*s.plan, s.env_id);
    benchmark::DoNotOptimize(p.ok());
  }
}
BENCHMARK(BM_MscnInference);

// Batched vs per-plan serving throughput. items_per_second is served
// requests/sec: compare BM_*PredictScalar/N against BM_*PredictBatch/N at
// the same batch size. Batch sizes 1 and 32 are fully-distinct plans and
// isolate the matrix-batching/allocation win; 256 exceeds the 80-query
// workload (see BatchOf) and additionally measures request deduplication —
// the dominant effect for template-heavy serving traffic, where it pushes
// the batched path past 3x the per-plan loop.

void BM_QppNetPredictScalar(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  std::vector<PlanSample> batch =
      f.BatchOf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (const auto& s : batch) {
      auto p = f.qpp->PredictMs(*s.plan, s.env_id);
      benchmark::DoNotOptimize(p.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_QppNetPredictScalar)->Arg(1)->Arg(32)->Arg(256);

void BM_QppNetPredictBatch(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  std::vector<PlanSample> batch =
      f.BatchOf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto p = f.qpp->PredictBatchMs(batch);
    benchmark::DoNotOptimize(p.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_QppNetPredictBatch)->Arg(1)->Arg(32)->Arg(256);

void BM_MscnPredictScalar(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  std::vector<PlanSample> batch =
      f.BatchOf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (const auto& s : batch) {
      auto p = f.mscn->PredictMs(*s.plan, s.env_id);
      benchmark::DoNotOptimize(p.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_MscnPredictScalar)->Arg(1)->Arg(32)->Arg(256);

void BM_MscnPredictBatch(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  std::vector<PlanSample> batch =
      f.BatchOf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto p = f.mscn->PredictBatchMs(batch);
    benchmark::DoNotOptimize(p.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_MscnPredictBatch)->Arg(1)->Arg(32)->Arg(256);

// ----------------------------------------------------- thread-pool sweeps

/// Collects the best observed timings of the *Threads benchmarks; the
/// custom main() below dumps them as BENCH_parallel.json after the run.
struct ParallelBenchRecorder {
  static ParallelBenchRecorder& Get() {
    static ParallelBenchRecorder recorder;
    return recorder;
  }

  void RecordFit(int threads, double seconds) {
    MutexLock lock(&mu);
    auto [it, inserted] = fit_seconds.emplace(threads, seconds);
    if (!inserted && seconds < it->second) it->second = seconds;
  }

  void RecordServe(const std::string& model, int threads, size_t batch,
                   double plans_per_sec) {
    MutexLock lock(&mu);
    auto key = std::make_pair(model, threads);
    auto [it, inserted] = serve.emplace(key, plans_per_sec);
    if (!inserted && plans_per_sec > it->second) it->second = plans_per_sec;
    serve_batch = batch;
  }

  void RecordTrain(const std::string& model, int threads, double seconds) {
    MutexLock lock(&mu);
    auto key = std::make_pair(model, threads);
    auto [it, inserted] = train_seconds.emplace(key, seconds);
    if (!inserted && seconds < it->second) it->second = seconds;
  }

  /// Kernel before/after records: mode 0 = reference replay, 1 = auto
  /// dispatch. All single-threaded (the kernel layer's own win).
  void RecordKernelGemm(int shape_index, int mode, double ns) {
    MutexLock lock(&mu);
    auto key = std::make_pair(shape_index, mode);
    auto [it, inserted] = kernel_gemm_ns.emplace(key, ns);
    if (!inserted && ns < it->second) it->second = ns;
  }

  void RecordKernelTrain(const std::string& model, int mode, double seconds) {
    MutexLock lock(&mu);
    auto key = std::make_pair(model, mode);
    auto [it, inserted] = kernel_train.emplace(key, seconds);
    if (!inserted && seconds < it->second) it->second = seconds;
  }

  void RecordKernelServe(const std::string& model, int mode,
                         double plans_per_sec) {
    MutexLock lock(&mu);
    auto key = std::make_pair(model, mode);
    auto [it, inserted] = kernel_serve.emplace(key, plans_per_sec);
    if (!inserted && plans_per_sec > it->second) it->second = plans_per_sec;
  }

  void RecordKernelFit(int mode, double seconds) {
    MutexLock lock(&mu);
    auto [it, inserted] = kernel_fit.emplace(mode, seconds);
    if (!inserted && seconds < it->second) it->second = seconds;
  }

  /// SIMD-tier before/after records: tier 0 = scalar ISA pin, 1 = the
  /// detected SIMD tier. All single-threaded, dense dispatch — the
  /// vectorization win in isolation.
  void RecordSimdGemm(int shape_index, int tier, double ns) {
    MutexLock lock(&mu);
    auto key = std::make_pair(shape_index, tier);
    auto [it, inserted] = simd_gemm_ns.emplace(key, ns);
    if (!inserted && ns < it->second) it->second = ns;
  }

  void RecordSimdTrain(const std::string& model, int tier, double seconds) {
    MutexLock lock(&mu);
    auto key = std::make_pair(model, tier);
    auto [it, inserted] = simd_train.emplace(key, seconds);
    if (!inserted && seconds < it->second) it->second = seconds;
  }

  void RecordSimdServe(const std::string& model, int tier,
                       double plans_per_sec) {
    MutexLock lock(&mu);
    auto key = std::make_pair(model, tier);
    auto [it, inserted] = simd_serve.emplace(key, plans_per_sec);
    if (!inserted && plans_per_sec > it->second) it->second = plans_per_sec;
  }

  /// Async serving sweep: mode 0 = 8 callers doing one-at-a-time PredictMs,
  /// mode 1 = the same callers submitting through an AsyncServer.
  void RecordAsync(const std::string& model, int mode, size_t callers,
                   double plans_per_sec) {
    MutexLock lock(&mu);
    auto key = std::make_pair(model, mode);
    auto [it, inserted] = async_pps.emplace(key, plans_per_sec);
    if (!inserted && plans_per_sec > it->second) it->second = plans_per_sec;
    async_callers = callers;
  }

  /// One adaptation cycle under serving load: wall time of the
  /// retrain+save leg and of the LoadAndSwap publish leg, with `callers`
  /// threads hammering the server throughout. Keeps the fastest cycle
  /// (latency: lower is better).
  void RecordAdapt(size_t callers, double retrain_save_seconds,
                   double swap_seconds) {
    MutexLock lock(&mu);
    if (adapt_callers == 0 ||
        retrain_save_seconds + swap_seconds <
            adapt_retrain_save_seconds + adapt_swap_seconds) {
      adapt_retrain_save_seconds = retrain_save_seconds;
      adapt_swap_seconds = swap_seconds;
    }
    adapt_callers = callers;
  }

  bool empty() {
    MutexLock lock(&mu);
    return fit_seconds.empty() && serve.empty() && train_seconds.empty() &&
           kernel_gemm_ns.empty() && kernel_train.empty() &&
           kernel_serve.empty() && kernel_fit.empty() && async_pps.empty() &&
           simd_gemm_ns.empty() && simd_train.empty() && simd_serve.empty() &&
           adapt_callers == 0;
  }

  /// Extracts the raw text of `"key": <value>` from a previous dump (our
  /// own writer's output), so sections the current run did not exercise
  /// survive a partial rerun. Returns empty when absent.
  static std::string ExtractSection(const std::string& json,
                                    const std::string& key) {
    std::string needle = "\"" + key + "\":";
    size_t at = json.find(needle);
    if (at == std::string::npos) return "";
    size_t start = at + needle.size();
    while (start < json.size() && json[start] == ' ') ++start;
    if (start >= json.size() ||
        (json[start] != '[' && json[start] != '{')) {
      return "";
    }
    int depth = 0;
    for (size_t i = start; i < json.size(); ++i) {
      if (json[i] == '[' || json[i] == '{') ++depth;
      if (json[i] == ']' || json[i] == '}') {
        --depth;
        if (depth == 0) return json.substr(start, i - start + 1);
      }
    }
    return "";
  }

  /// Minimal hand-rolled JSON:
  /// {"fit": [...], "train": [...], "predict_batch": [...], "kernels": {...}}.
  /// Sections with no data in this run are carried over from an existing
  /// file — a partial `--benchmark_filter` rerun updates only what it ran
  /// (historically a Fit/Train-only rerun silently emptied the
  /// predict_batch section).
  void WriteJson(const std::string& path) {
    MutexLock lock(&mu);
    std::string previous;
    {
      // qcfe-lint: allow(no-raw-file-io) -- benchmark result recorder, not model-artifact I/O
      std::ifstream is(path);
      if (is.good()) {
        std::string all((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
        previous = std::move(all);
      }
    }
    auto carry = [&](const char* key) {
      return ExtractSection(previous, key);
    };

    // qcfe-lint: allow(no-raw-file-io) -- benchmark result recorder, not model-artifact I/O
    std::ofstream os(path);
    os << "{\n  \"fit\": ";
    if (fit_seconds.empty() && !carry("fit").empty()) {
      os << carry("fit");
    } else {
      os << "[";
      double serial = fit_seconds.count(1) ? fit_seconds.at(1) : 0.0;
      bool first = true;
      for (const auto& [threads, seconds] : fit_seconds) {
        os << (first ? "" : ",") << "\n    {\"threads\": " << threads
           << ", \"seconds\": " << seconds << ", \"speedup\": "
           << (seconds > 0.0 && serial > 0.0 ? serial / seconds : 0.0) << "}";
        first = false;
      }
      os << "\n  ]";
    }
    os << ",\n  \"train\": ";
    if (train_seconds.empty() && !carry("train").empty()) {
      os << carry("train");
    } else {
      os << "[";
      bool first = true;
      for (const auto& [key, seconds] : train_seconds) {
        double serial_train = train_seconds.count({key.first, 1})
                                  ? train_seconds.at({key.first, 1})
                                  : 0.0;
        os << (first ? "" : ",") << "\n    {\"model\": \"" << key.first
           << "\", \"threads\": " << key.second << ", \"seconds\": " << seconds
           << ", \"speedup\": "
           << (seconds > 0.0 && serial_train > 0.0 ? serial_train / seconds
                                                   : 0.0)
           << "}";
        first = false;
      }
      os << "\n  ]";
    }
    os << ",\n  \"predict_batch\": ";
    if (serve.empty() && !carry("predict_batch").empty()) {
      os << carry("predict_batch");
    } else {
      os << "[";
      bool first = true;
      for (const auto& [key, pps] : serve) {
        os << (first ? "" : ",") << "\n    {\"model\": \"" << key.first
           << "\", \"threads\": " << key.second
           << ", \"batch\": " << serve_batch << ", \"plans_per_sec\": " << pps
           << "}";
        first = false;
      }
      os << "\n  ]";
    }
    os << ",\n  \"kernels\": ";
    if (kernel_gemm_ns.empty() && kernel_train.empty() &&
        kernel_serve.empty() && kernel_fit.empty() &&
        !carry("kernels").empty()) {
      os << carry("kernels");
    } else {
      WriteKernelsSection(&os);
    }
    os << ",\n  \"kernels_simd\": ";
    if (simd_gemm_ns.empty() && simd_train.empty() && simd_serve.empty() &&
        !carry("kernels_simd").empty()) {
      os << carry("kernels_simd");
    } else {
      WriteKernelsSimdSection(&os);
    }
    os << ",\n  \"async\": ";
    // Rows are keyed by the async (mode 1) measurements; a rerun that only
    // recorded the direct baseline (mode 0) must keep the carried section
    // rather than emit an empty array.
    bool have_async_rows = false;
    for (const auto& [key, pps] : async_pps) {
      (void)pps;
      if (key.second == 1) have_async_rows = true;
    }
    if (!have_async_rows && !carry("async").empty()) {
      os << carry("async");
    } else {
      os << "[";
      bool first = true;
      for (const auto& [key, pps] : async_pps) {
        if (key.second != 1) continue;  // one row per model, direct inline
        double direct = async_pps.count({key.first, 0})
                            ? async_pps.at({key.first, 0})
                            : 0.0;
        os << (first ? "" : ",") << "\n    {\"model\": \"" << key.first
           << "\", \"callers\": " << async_callers
           << ", \"direct_plans_per_sec\": " << direct
           << ", \"async_plans_per_sec\": " << pps << ", \"speedup\": "
           << (direct > 0.0 && pps > 0.0 ? pps / direct : 0.0) << "}";
        first = false;
      }
      os << "\n  ]";
    }
    os << ",\n  \"adapt\": ";
    if (adapt_callers == 0 && !carry("adapt").empty()) {
      os << carry("adapt");
    } else {
      os << "{\n    \"callers\": " << adapt_callers
         << ",\n    \"retrain_save_seconds\": " << adapt_retrain_save_seconds
         << ",\n    \"swap_seconds\": " << adapt_swap_seconds << "\n  }";
    }
    os << "\n}\n";
    std::cout << "wrote " << path << "\n";
  }

  // qcfe-lint: allow(no-raw-file-io) -- benchmark result recorder, not model-artifact I/O
  void WriteKernelsSection(std::ofstream* out) QCFE_REQUIRES(mu);
  // qcfe-lint: allow(no-raw-file-io) -- benchmark result recorder, not model-artifact I/O
  void WriteKernelsSimdSection(std::ofstream* out) QCFE_REQUIRES(mu);

  Mutex mu;
  std::map<int, double> fit_seconds QCFE_GUARDED_BY(mu);
  std::map<std::pair<std::string, int>, double> train_seconds
      QCFE_GUARDED_BY(mu);
  std::map<std::pair<std::string, int>, double> serve QCFE_GUARDED_BY(mu);
  size_t serve_batch QCFE_GUARDED_BY(mu) = 0;
  std::map<std::pair<int, int>, double> kernel_gemm_ns QCFE_GUARDED_BY(mu);
  std::map<std::pair<std::string, int>, double> kernel_train
      QCFE_GUARDED_BY(mu);
  std::map<std::pair<std::string, int>, double> kernel_serve
      QCFE_GUARDED_BY(mu);
  std::map<int, double> kernel_fit QCFE_GUARDED_BY(mu);
  std::map<std::pair<std::string, int>, double> async_pps QCFE_GUARDED_BY(mu);
  size_t async_callers QCFE_GUARDED_BY(mu) = 0;
  std::map<std::pair<int, int>, double> simd_gemm_ns QCFE_GUARDED_BY(mu);
  std::map<std::pair<std::string, int>, double> simd_train
      QCFE_GUARDED_BY(mu);
  std::map<std::pair<std::string, int>, double> simd_serve
      QCFE_GUARDED_BY(mu);
  size_t adapt_callers QCFE_GUARDED_BY(mu) = 0;
  double adapt_retrain_save_seconds QCFE_GUARDED_BY(mu) = 0.0;
  double adapt_swap_seconds QCFE_GUARDED_BY(mu) = 0.0;
};

// ------------------------------------------------------- kernel sweeps

/// GEMM shapes drawn from the real QPPNet/MSCN layer dims this binary
/// trains and serves: per-node training rows, wave-batched serving
/// buckets, packed set-module element matrices — sparse (one-hot/padded)
/// and dense (standardized activations) variants of each.
struct KernelShape {
  const char* variant;  // "nn" (a*b+bias), "bt" (a*b^T), "at" (acc+=a^T*b)
  size_t m, k, n;       // a is (m x k); nn: b (k x n); bt: b (n x k);
                        // at: a is (k x m), b (k x n), acc (m x n)
  double sparsity;      // zero fraction planted in a
};

constexpr KernelShape kKernelShapes[] = {
    {"nn", 1, 66, 48, 0.90},    // QPPNet unit L1, per-node training row
    {"nn", 1, 48, 48, 0.00},    // QPPNet unit L2 row, dense activation
    {"nn", 64, 66, 48, 0.25},   // QPPNet wave bucket (padded child slots)
    {"nn", 256, 58, 32, 0.95},  // MSCN predicate module, one-hot rows
    {"nn", 256, 26, 64, 0.00},  // MSCN operator module, standardized dense
    {"nn", 80, 96, 64, 0.00},   // MSCN final module over the 3h concat
    {"bt", 1, 48, 66, 0.00},    // dX = dY * W^T, per-node backward row
    {"bt", 64, 48, 48, 0.00},   // batched hidden-layer backward
    {"at", 66, 1, 48, 0.90},    // dW += x^T dY, QPPNet rank-1 (k = 1 row)
    {"at", 58, 16, 32, 0.95},   // dW += X^T dY, MSCN chunk (one-hot rows)
    {"at", 48, 64, 48, 0.00},   // dense batched accumulate
};
constexpr int kNumKernelShapes =
    static_cast<int>(sizeof(kKernelShapes) / sizeof(kKernelShapes[0]));

Matrix RandomWithSparsity(size_t rows, size_t cols, double sparsity,
                          Rng* rng) {
  Matrix m(rows, cols);
  // Row-wise on purpose: a flat walk over data() would also fill the
  // alignment pad columns, which must stay exactly zero.
  for (size_t r = 0; r < rows; ++r) {
    double* row = m.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = rng->Uniform(0.0, 1.0) < sparsity ? 0.0 : rng->Gaussian(0.0, 1.0);
    }
  }
  return m;
}

// qcfe-lint: allow(no-raw-file-io) -- benchmark result recorder, not model-artifact I/O
void ParallelBenchRecorder::WriteKernelsSection(std::ofstream* out) {
  // qcfe-lint: allow(no-raw-file-io) -- benchmark result recorder, not model-artifact I/O
  std::ofstream& os = *out;
  os << "{\n    \"gemm\": [";
  bool first = true;
  for (int s = 0; s < kNumKernelShapes; ++s) {
    if (!kernel_gemm_ns.count({s, 0}) && !kernel_gemm_ns.count({s, 1})) {
      continue;
    }
    const KernelShape& shape = kKernelShapes[s];
    double ref = kernel_gemm_ns.count({s, 0}) ? kernel_gemm_ns.at({s, 0}) : 0;
    double opt = kernel_gemm_ns.count({s, 1}) ? kernel_gemm_ns.at({s, 1}) : 0;
    os << (first ? "" : ",") << "\n      {\"variant\": \"" << shape.variant
       << "\", \"m\": " << shape.m << ", \"k\": " << shape.k
       << ", \"n\": " << shape.n << ", \"sparsity\": " << shape.sparsity
       << ", \"reference_ns\": " << ref << ", \"optimized_ns\": " << opt
       << ", \"speedup\": " << (ref > 0 && opt > 0 ? ref / opt : 0.0) << "}";
    first = false;
  }
  os << "\n    ],\n    \"train\": [";
  first = true;
  for (const auto& [key, seconds] : kernel_train) {
    if (key.second != 1) continue;
    double ref =
        kernel_train.count({key.first, 0}) ? kernel_train.at({key.first, 0})
                                           : 0.0;
    os << (first ? "" : ",") << "\n      {\"model\": \"" << key.first
       << "\", \"reference_seconds\": " << ref
       << ", \"optimized_seconds\": " << seconds << ", \"speedup\": "
       << (ref > 0 && seconds > 0 ? ref / seconds : 0.0) << "}";
    first = false;
  }
  os << "\n    ],\n    \"predict_batch\": [";
  first = true;
  for (const auto& [key, pps] : kernel_serve) {
    if (key.second != 1) continue;
    double ref =
        kernel_serve.count({key.first, 0}) ? kernel_serve.at({key.first, 0})
                                           : 0.0;
    os << (first ? "" : ",") << "\n      {\"model\": \"" << key.first
       << "\", \"batch\": 256, \"reference_plans_per_sec\": " << ref
       << ", \"optimized_plans_per_sec\": " << pps << ", \"speedup\": "
       << (ref > 0 && pps > 0 ? pps / ref : 0.0) << "}";
    first = false;
  }
  os << "\n    ],\n    \"fit\": ";
  if (kernel_fit.count(0) || kernel_fit.count(1)) {
    double ref = kernel_fit.count(0) ? kernel_fit.at(0) : 0.0;
    double opt = kernel_fit.count(1) ? kernel_fit.at(1) : 0.0;
    os << "{\"reference_seconds\": " << ref
       << ", \"optimized_seconds\": " << opt << ", \"speedup\": "
       << (ref > 0 && opt > 0 ? ref / opt : 0.0) << "}";
  } else {
    os << "{}";
  }
  os << "\n  }";
}

// qcfe-lint: allow(no-raw-file-io) -- benchmark result recorder, not model-artifact I/O
void ParallelBenchRecorder::WriteKernelsSimdSection(std::ofstream* out) {
  // qcfe-lint: allow(no-raw-file-io) -- benchmark result recorder, not model-artifact I/O
  std::ofstream& os = *out;
  const kernels::KernelIsa detected = kernels::DetectKernelIsa();
  kernels::KernelTuning tuning;
  {
    // Tuning() reports the active tier's thresholds; read the detected one.
    kernels::ScopedKernelIsa pin(detected);
    tuning = kernels::Tuning();
  }
  os << "{\n    \"isa\": \"" << kernels::KernelIsaName(detected)
     << "\",\n    \"tuning\": {\"dense_min_rows\": "
     << (tuning.dense_min_rows == SIZE_MAX
             ? -1
             : static_cast<long long>(tuning.dense_min_rows))
     << ", \"sparse_dispatch_threshold\": " << tuning.sparse_dispatch_threshold
     << ", \"probed_gemm_speedup\": " << tuning.simd_gemm_speedup
     << ", \"autotuned\": " << (tuning.autotuned ? "true" : "false")
     << "},\n    \"gemm\": [";
  bool first = true;
  for (int s = 0; s < kNumKernelShapes; ++s) {
    if (!simd_gemm_ns.count({s, 0}) && !simd_gemm_ns.count({s, 1})) continue;
    const KernelShape& shape = kKernelShapes[s];
    double ref = simd_gemm_ns.count({s, 0}) ? simd_gemm_ns.at({s, 0}) : 0;
    double opt = simd_gemm_ns.count({s, 1}) ? simd_gemm_ns.at({s, 1}) : 0;
    os << (first ? "" : ",") << "\n      {\"variant\": \"" << shape.variant
       << "\", \"m\": " << shape.m << ", \"k\": " << shape.k
       << ", \"n\": " << shape.n << ", \"sparsity\": " << shape.sparsity
       << ", \"scalar_ns\": " << ref << ", \"simd_ns\": " << opt
       << ", \"speedup\": " << (ref > 0 && opt > 0 ? ref / opt : 0.0) << "}";
    first = false;
  }
  os << "\n    ],\n    \"train\": [";
  first = true;
  for (const auto& [key, seconds] : simd_train) {
    if (key.second != 1) continue;
    double ref =
        simd_train.count({key.first, 0}) ? simd_train.at({key.first, 0}) : 0.0;
    os << (first ? "" : ",") << "\n      {\"model\": \"" << key.first
       << "\", \"scalar_seconds\": " << ref
       << ", \"simd_seconds\": " << seconds << ", \"speedup\": "
       << (ref > 0 && seconds > 0 ? ref / seconds : 0.0) << "}";
    first = false;
  }
  os << "\n    ],\n    \"predict_batch\": [";
  first = true;
  for (const auto& [key, pps] : simd_serve) {
    if (key.second != 1) continue;
    double ref =
        simd_serve.count({key.first, 0}) ? simd_serve.at({key.first, 0}) : 0.0;
    os << (first ? "" : ",") << "\n      {\"model\": \"" << key.first
       << "\", \"batch\": 256, \"scalar_plans_per_sec\": " << ref
       << ", \"simd_plans_per_sec\": " << pps << ", \"speedup\": "
       << (ref > 0 && pps > 0 ? pps / ref : 0.0) << "}";
    first = false;
  }
  os << "\n    ]\n  }";
}

/// One kernel invocation per iteration at the shape table entry
/// state.range(0), under reference (range(1) == 0) or auto dispatch.
void BM_KernelGemm(benchmark::State& state) {
  const KernelShape& shape = kKernelShapes[state.range(0)];
  const int mode = static_cast<int>(state.range(1));
  kernels::ScopedKernelMode pin(mode == 0 ? kernels::KernelMode::kReference
                                          : kernels::KernelMode::kAuto);
  Rng rng(41);
  Matrix a, b, bias, out;
  if (std::strcmp(shape.variant, "nn") == 0) {
    a = RandomWithSparsity(shape.m, shape.k, shape.sparsity, &rng);
    b = RandomWithSparsity(shape.k, shape.n, 0.0, &rng);
    bias = RandomWithSparsity(1, shape.n, 0.0, &rng);
  } else if (std::strcmp(shape.variant, "bt") == 0) {
    a = RandomWithSparsity(shape.m, shape.k, shape.sparsity, &rng);
    b = RandomWithSparsity(shape.n, shape.k, 0.0, &rng);
  } else {
    a = RandomWithSparsity(shape.k, shape.m, shape.sparsity, &rng);
    b = RandomWithSparsity(shape.k, shape.n, 0.0, &rng);
    out.ResetShape(shape.m, shape.n);
  }
  WallTimer timer;
  size_t iters = 0;
  for (auto _ : state) {
    if (std::strcmp(shape.variant, "nn") == 0) {
      kernels::GemmNNBias(a, b, bias, &out);
    } else if (std::strcmp(shape.variant, "bt") == 0) {
      kernels::GemmBT(a, b, &out);
    } else {
      kernels::GemmATAccumulate(a, b, &out);
    }
    benchmark::DoNotOptimize(out.data().data());
    ++iters;
  }
  if (iters > 0) {
    ParallelBenchRecorder::Get().RecordKernelGemm(
        static_cast<int>(state.range(0)), mode,
        timer.Seconds() * 1e9 / static_cast<double>(iters));
  }
  state.SetItemsProcessed(static_cast<int64_t>(iters) *
                          static_cast<int64_t>(shape.m * shape.k * shape.n));
}
BENCHMARK(BM_KernelGemm)
    ->ArgsProduct({benchmark::CreateDenseRange(0, kNumKernelShapes - 1, 1),
                   {0, 1}});

/// Scalar tier vs the detected SIMD tier on dense GemmNN at the real layer
/// shapes (the first six table entries are the "nn" variants). Dispatch is
/// pinned dense so the sweep times the panel kernels themselves; on a
/// machine with no SIMD tier both pins resolve to scalar and the recorded
/// speedup is ~1.
void BM_KernelIsaGemm(benchmark::State& state) {
  const KernelShape& shape = kKernelShapes[state.range(0)];
  const int tier = static_cast<int>(state.range(1));
  kernels::ScopedKernelIsa pin_isa(tier == 0 ? kernels::KernelIsa::kScalar
                                             : kernels::DetectKernelIsa());
  kernels::ScopedKernelMode pin_mode(kernels::KernelMode::kDense);
  Rng rng(43);
  Matrix a = RandomWithSparsity(shape.m, shape.k, shape.sparsity, &rng);
  Matrix b = RandomWithSparsity(shape.k, shape.n, 0.0, &rng);
  Matrix out;
  WallTimer timer;
  size_t iters = 0;
  for (auto _ : state) {
    kernels::GemmNN(a, b, &out);
    benchmark::DoNotOptimize(out.data().data());
    ++iters;
  }
  if (iters > 0) {
    ParallelBenchRecorder::Get().RecordSimdGemm(
        static_cast<int>(state.range(0)), tier,
        timer.Seconds() * 1e9 / static_cast<double>(iters));
  }
  state.SetItemsProcessed(static_cast<int64_t>(iters) *
                          static_cast<int64_t>(shape.m * shape.k * shape.n));
}
BENCHMARK(BM_KernelIsaGemm)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 5, 1), {0, 1}});

/// Whole-model training under the scalar tier (range(0) == 0) vs the
/// detected SIMD tier, production dispatch — the end-to-end vectorization
/// win BENCH_parallel.json records as the kernels_simd train delta.
template <const char* kModel>
void BM_TrainKernelIsa(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const int tier = static_cast<int>(state.range(0));
  kernels::ScopedKernelIsa pin(tier == 0 ? kernels::KernelIsa::kScalar
                                         : kernels::DetectKernelIsa());
  TrainConfig cfg;
  cfg.epochs = 8;
  for (auto _ : state) {
    state.PauseTiming();
    auto model = EstimatorRegistry::Global()
                     .Create(kModel, {f.ctx->db->catalog(),
                                      f.featurizer.get(), 3})
                     .value();
    state.ResumeTiming();
    WallTimer timer;
    benchmark::DoNotOptimize(model->Train(f.train, cfg, nullptr).ok());
    ParallelBenchRecorder::Get().RecordSimdTrain(kModel, tier,
                                                 timer.Seconds());
  }
}

/// Single-thread batched serving at batch 256 under the scalar tier vs the
/// detected SIMD tier.
template <const char* kModel>
void BM_PredictBatchKernelIsa(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const int tier = static_cast<int>(state.range(0));
  kernels::ScopedKernelIsa pin(tier == 0 ? kernels::KernelIsa::kScalar
                                         : kernels::DetectKernelIsa());
  const CostModel* model =
      std::string(kModel) == "qppnet" ? f.qpp.get() : f.mscn.get();
  std::vector<PlanSample> batch = f.BatchOf(256);
  for (auto _ : state) {
    WallTimer timer;
    auto p = model->PredictBatchMs(batch, nullptr);
    double seconds = timer.Seconds();
    benchmark::DoNotOptimize(p.ok());
    if (seconds > 0.0) {
      ParallelBenchRecorder::Get().RecordSimdServe(
          kModel, tier, static_cast<double>(batch.size()) / seconds);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}

/// Before/after single-thread training: the same estimator trained under
/// the reference kernel replay (mode 0: historical loops, temporary
/// allocations included) and the production dispatch (mode 1). Models are
/// bit-identical either way — the sweep isolates pure kernel-layer
/// throughput, which BENCH_parallel.json records as the train delta.
template <const char* kModel>
void BM_TrainKernelMode(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const int mode = static_cast<int>(state.range(0));
  kernels::ScopedKernelMode pin(mode == 0 ? kernels::KernelMode::kReference
                                          : kernels::KernelMode::kAuto);
  TrainConfig cfg;
  cfg.epochs = 8;
  for (auto _ : state) {
    state.PauseTiming();
    auto model = EstimatorRegistry::Global()
                     .Create(kModel, {f.ctx->db->catalog(),
                                      f.featurizer.get(), 3})
                     .value();
    state.ResumeTiming();
    WallTimer timer;
    benchmark::DoNotOptimize(model->Train(f.train, cfg, nullptr).ok());
    ParallelBenchRecorder::Get().RecordKernelTrain(kModel, mode,
                                                   timer.Seconds());
  }
}

/// Before/after single-thread batched serving at batch 256.
template <const char* kModel>
void BM_PredictBatchKernelMode(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const int mode = static_cast<int>(state.range(0));
  kernels::ScopedKernelMode pin(mode == 0 ? kernels::KernelMode::kReference
                                          : kernels::KernelMode::kAuto);
  const CostModel* model =
      std::string(kModel) == "qppnet" ? f.qpp.get() : f.mscn.get();
  std::vector<PlanSample> batch = f.BatchOf(256);
  for (auto _ : state) {
    WallTimer timer;
    auto p = model->PredictBatchMs(batch, nullptr);
    double seconds = timer.Seconds();
    benchmark::DoNotOptimize(p.ok());
    if (seconds > 0.0) {
      ParallelBenchRecorder::Get().RecordKernelServe(
          kModel, mode, static_cast<double>(batch.size()) / seconds);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}

/// Before/after full pipeline fit (snapshot + reduction + training),
/// single-threaded.
void BM_PipelineFitKernelMode(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const int mode = static_cast<int>(state.range(0));
  kernels::ScopedKernelMode pin(mode == 0 ? kernels::KernelMode::kReference
                                          : kernels::KernelMode::kAuto);
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 6;
  cfg.pre_reduction_epochs = 4;
  cfg.parallelism.num_threads = 1;
  for (auto _ : state) {
    WallTimer timer;
    auto pipeline = f.ctx->FitPipeline(cfg, f.train);
    double seconds = timer.Seconds();
    benchmark::DoNotOptimize(pipeline.ok());
    ParallelBenchRecorder::Get().RecordKernelFit(mode, seconds);
  }
}
BENCHMARK(BM_PipelineFitKernelMode)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Full QCFE pipeline fit (snapshot + reduction + training) at a given
/// worker count. All thread counts produce bit-identical pipelines, so the
/// sweep isolates pure wall-clock scaling.
void BM_PipelineFitThreads(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  int threads = static_cast<int>(state.range(0));
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 6;
  cfg.pre_reduction_epochs = 4;
  cfg.parallelism.num_threads = threads;
  for (auto _ : state) {
    WallTimer timer;
    auto pipeline = f.ctx->FitPipeline(cfg, f.train);
    double seconds = timer.Seconds();
    benchmark::DoNotOptimize(pipeline.ok());
    ParallelBenchRecorder::Get().RecordFit(threads, seconds);
  }
}
BENCHMARK(BM_PipelineFitThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Chunk-parallel gradient training at a given worker count: a fresh
/// estimator per iteration, trained for a fixed epoch budget through the
/// attached pool. All thread counts produce bit-identical models (fixed
/// chunk partition + chunk-order sink reduction), so the sweep isolates
/// pure wall-clock scaling of Train itself.
template <const char* kModel>
void BM_TrainThreads(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  TrainConfig cfg;
  cfg.epochs = 8;
  for (auto _ : state) {
    state.PauseTiming();
    auto model = EstimatorRegistry::Global()
                     .Create(kModel, {f.ctx->db->catalog(),
                                      f.featurizer.get(), 3})
                     .value();
    model->set_thread_pool(pool.get());
    state.ResumeTiming();
    WallTimer timer;
    benchmark::DoNotOptimize(model->Train(f.train, cfg, nullptr).ok());
    ParallelBenchRecorder::Get().RecordTrain(kModel, threads, timer.Seconds());
  }
}

template <const char* kModel>
void BM_PredictBatchThreads(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  const CostModel* model =
      std::string(kModel) == "qppnet" ? f.qpp.get() : f.mscn.get();
  std::vector<PlanSample> batch = f.BatchOf(256);
  for (auto _ : state) {
    WallTimer timer;
    auto p = model->PredictBatchMs(batch, pool.get());
    double seconds = timer.Seconds();
    benchmark::DoNotOptimize(p.ok());
    if (seconds > 0.0) {
      ParallelBenchRecorder::Get().RecordServe(
          kModel, threads, batch.size(),
          static_cast<double>(batch.size()) / seconds);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
constexpr char kQppName[] = "qppnet";
constexpr char kMscnName[] = "mscn";
BENCHMARK_TEMPLATE(BM_TrainThreads, kQppName)
    ->Name("BM_QppNetTrainThreads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_TrainThreads, kMscnName)
    ->Name("BM_MscnTrainThreads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_PredictBatchThreads, kQppName)
    ->Name("BM_QppNetPredictBatchThreads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);
BENCHMARK_TEMPLATE(BM_PredictBatchThreads, kMscnName)
    ->Name("BM_MscnPredictBatchThreads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);
BENCHMARK_TEMPLATE(BM_TrainKernelMode, kQppName)
    ->Name("BM_QppNetTrainKernelMode")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_TrainKernelMode, kMscnName)
    ->Name("BM_MscnTrainKernelMode")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_PredictBatchKernelMode, kQppName)
    ->Name("BM_QppNetPredictBatchKernelMode")
    ->Arg(0)
    ->Arg(1);
BENCHMARK_TEMPLATE(BM_PredictBatchKernelMode, kMscnName)
    ->Name("BM_MscnPredictBatchKernelMode")
    ->Arg(0)
    ->Arg(1);
BENCHMARK_TEMPLATE(BM_TrainKernelIsa, kQppName)
    ->Name("BM_QppNetTrainKernelIsa")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_TrainKernelIsa, kMscnName)
    ->Name("BM_MscnTrainKernelIsa")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_PredictBatchKernelIsa, kQppName)
    ->Name("BM_QppNetPredictBatchKernelIsa")
    ->Arg(0)
    ->Arg(1);
BENCHMARK_TEMPLATE(BM_PredictBatchKernelIsa, kMscnName)
    ->Name("BM_MscnPredictBatchKernelIsa")
    ->Arg(0)
    ->Arg(1);

// ----------------------------------------------------- async serving sweep

/// Online-serving throughput under concurrent callers: 8 caller threads
/// each issue 256 single-plan requests (cycling the 80-query test split
/// with per-caller offsets, so traffic repeats like templated workloads).
/// Mode 0 is the baseline every caller starts from — one-at-a-time
/// PredictMs, no batching anywhere; mode 1 routes the same traffic through
/// an AsyncServer, which coalesces the callers' singleton submissions into
/// micro-batches for PredictBatchMs. The recorder writes both into the
/// `async` section of BENCH_parallel.json.
template <const char* kModel>
void BM_AsyncThroughput(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  const int mode = static_cast<int>(state.range(0));
  constexpr size_t kCallers = 8;
  constexpr size_t kPerCaller = 256;
  const CostModel* model =
      std::string(kModel) == "qppnet" ? f.qpp.get() : f.mscn.get();
  auto sample = [&](size_t caller, size_t i) -> const PlanSample& {
    return f.test[(caller * 17 + i) % f.test.size()];
  };
  for (auto _ : state) {
    WallTimer timer;
    if (mode == 0) {
      std::vector<std::thread> callers;
      callers.reserve(kCallers);
      for (size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back([&, c] {
          for (size_t i = 0; i < kPerCaller; ++i) {
            const PlanSample& s = sample(c, i);
            auto p = model->PredictMs(*s.plan, s.env_id);
            benchmark::DoNotOptimize(p.ok());
          }
        });
      }
      for (std::thread& t : callers) t.join();
    } else {
      AsyncServeConfig cfg;
      cfg.max_batch = 512;
      cfg.max_delay_micros = 2000;
      cfg.max_queue = 0;
      AsyncServer server(model, cfg);
      std::vector<std::vector<std::future<Result<double>>>> futures(kCallers);
      std::vector<std::thread> callers;
      callers.reserve(kCallers);
      for (size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back([&, c] {
          futures[c].reserve(kPerCaller);
          for (size_t i = 0; i < kPerCaller; ++i) {
            const PlanSample& s = sample(c, i);
            futures[c].push_back(server.Submit(*s.plan, s.env_id));
          }
        });
      }
      for (std::thread& t : callers) t.join();
      // Traffic is finite here (closed-loop bench): drain the last partial
      // micro-batch instead of letting it wait out its deadline.
      server.Shutdown(AsyncServer::ShutdownMode::kDrain);
      for (auto& caller_futures : futures) {
        for (auto& fut : caller_futures) {
          auto p = fut.get();
          benchmark::DoNotOptimize(p.ok());
        }
      }
    }
    double seconds = timer.Seconds();
    if (seconds > 0.0) {
      ParallelBenchRecorder::Get().RecordAsync(
          kModel, mode, kCallers,
          static_cast<double>(kCallers * kPerCaller) / seconds);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kCallers * kPerCaller));
}
BENCHMARK_TEMPLATE(BM_AsyncThroughput, kQppName)
    ->Name("BM_QppNetAsyncThroughput")
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_AsyncThroughput, kMscnName)
    ->Name("BM_MscnAsyncThroughput")
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------- adaptation cycle cost

/// Latency of one online-adaptation cycle while the server is under load:
/// 4 caller threads hammer a hot-swappable AsyncServer with singleton
/// submissions for the whole iteration; the measured thread meanwhile runs
/// the cycle's two legs — (a) warm-start Retrain + atomic Save, (b)
/// LoadAndSwap publish with a bit-parity probe. The recorder writes both
/// into the `adapt` section of BENCH_parallel.json; swap_seconds is the
/// number that bounds how stale a drifted model can stay once retraining
/// has finished.
void BM_AdaptRetrainSwap(benchmark::State& state) {
  struct AdaptFixture {
    std::unique_ptr<BenchmarkContext> ctx;
    std::vector<PlanSample> train, test, drifted;
    std::unique_ptr<Pipeline> trainer;
    static AdaptFixture& Get() {
      static AdaptFixture* fixture = [] {
        auto* f = new AdaptFixture();
        HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
        opt.corpus_size = 200;
        opt.num_envs = 2;
        f->ctx = std::move(BenchmarkContext::Create(opt).value());
        f->ctx->Split(200, &f->train, &f->test);
        for (size_t i = 0; i < 64; ++i) {
          f->drifted.push_back({f->train[i].plan, f->train[i].env_id,
                                4.0 * f->train[i].label_ms});
        }
        PipelineConfig cfg;
        cfg.estimator = "qppnet";
        cfg.pre_reduction_epochs = 2;
        cfg.train.epochs = 5;
        f->trainer = std::move(f->ctx->FitPipeline(cfg, f->train).value());
        return f;
      }();
      return *fixture;
    }
  };
  AdaptFixture& f = AdaptFixture::Get();
  const std::string path = "/tmp/qcfe_bench_adapt.qcfa";
  QCFE_CHECK_OK(f.trainer->Save(path));

  SwappableModel models;
  AsyncServeConfig scfg;
  scfg.max_batch = 64;
  scfg.max_delay_micros = 200;
  auto server = Pipeline::ServeAsync(&models, scfg);
  QCFE_CHECK(LoadAndSwap(f.ctx->db.get(), &f.ctx->envs, &f.ctx->templates,
                         path, {}, &models, server.get())
                 .ok(),
             "adapt bench initial publish failed");

  constexpr size_t kCallers = 4;
  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::vector<std::thread> callers;
    for (size_t c = 0; c < kCallers; ++c) {
      callers.emplace_back([&, c] {
        for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
          const PlanSample& s = f.test[(c * 17 + i) % f.test.size()];
          auto p = server->Submit(*s.plan, s.env_id).get();
          benchmark::DoNotOptimize(p.ok());
        }
      });
    }

    TrainConfig rt;
    rt.epochs = 3;
    WallTimer retrain_timer;
    QCFE_CHECK_OK(f.trainer->Retrain(f.drifted, rt, nullptr));
    QCFE_CHECK_OK(f.trainer->Save(path));
    const double retrain_save_s = retrain_timer.Seconds();

    SwapOptions options;
    options.probe.assign(f.test.begin(), f.test.begin() + 8);
    options.expected = f.trainer->PredictBatch(options.probe).value();
    WallTimer swap_timer;
    QCFE_CHECK(LoadAndSwap(f.ctx->db.get(), &f.ctx->envs, &f.ctx->templates,
                           path, options, &models, server.get())
                   .ok(),
               "adapt bench publish failed");
    const double swap_s = swap_timer.Seconds();

    stop.store(true);
    for (std::thread& t : callers) t.join();
    ParallelBenchRecorder::Get().RecordAdapt(kCallers, retrain_save_s,
                                             swap_s);
  }
  server->Shutdown();
  (void)Fs::Default()->RemoveFile(path);  // best-effort temp cleanup
}
BENCHMARK(BM_AdaptRetrainSwap)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_SnapshotFit(benchmark::State& state) {
  Rng rng(7);
  std::vector<OperatorObservation> obs;
  for (int i = 0; i < 2000; ++i) {
    OperatorObservation o;
    o.op = static_cast<OpType>(i % kNumOpTypes);
    o.n = rng.Uniform(10, 100000);
    o.n2 = rng.Uniform(10, 1000);
    o.ms = 0.001 * o.n + 0.1;
    obs.push_back(o);
  }
  for (auto _ : state) {
    auto snap = FeatureSnapshot::Fit(obs);
    benchmark::DoNotOptimize(snap.ok());
  }
}
BENCHMARK(BM_SnapshotFit);

void BM_DiffPropReduction(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  ReductionConfig cfg;
  cfg.algorithm = ReductionAlgorithm::kDiffProp;
  cfg.num_references = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = ReduceFeatures(*f.qpp, f.train, cfg);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_DiffPropReduction)->Arg(16)->Arg(64);

// ------------------------------------------------------------ smoke gate

/// End-to-end kernel parity sweep without google-benchmark: every kernel
/// entry point, every dispatch pin, over the real-shape table plus edge
/// shapes, and a short two-mode training loop. Returns false on the first
/// bit mismatch. This is what CI runs as `bench_micro --smoke`.
bool RunKernelSmoke() {
  using kernels::KernelIsa;
  using kernels::KernelMode;
  size_t checks = 0;
  size_t failures = 0;
  auto expect_equal = [&](const Matrix& want, const Matrix& got,
                          const char* what) {
    ++checks;
    if (want.rows() != got.rows() || want.cols() != got.cols()) {
      std::cerr << "smoke: " << what << " shape mismatch\n";
      ++failures;
      return;
    }
    for (size_t i = 0; i < want.data().size(); ++i) {
      if (want.data()[i] != got.data()[i]) {
        std::cerr << "smoke: " << what << " bit mismatch at flat index " << i
                  << "\n";
        ++failures;
        return;
      }
    }
  };
  // The SIMD-tier gate: per-element error relative to max(|want|, 1), at
  // the documented cross-tier tolerance; tracks the tier's worst element.
  auto expect_close = [&](const Matrix& want, const Matrix& got,
                          const char* what, double* worst) {
    ++checks;
    if (want.rows() != got.rows() || want.cols() != got.cols()) {
      std::cerr << "smoke: " << what << " shape mismatch\n";
      ++failures;
      return;
    }
    double rel = 0.0;
    for (size_t r = 0; r < want.rows(); ++r) {
      for (size_t c = 0; c < want.cols(); ++c) {
        const double w = want.At(r, c);
        const double g = got.At(r, c);
        const double denom = std::abs(w) > 1.0 ? std::abs(w) : 1.0;
        const double e = std::abs(g - w) / denom;
        if (e > rel) rel = e;
      }
    }
    if (rel > kernels::kSimdRelTolerance) {
      std::cerr << "smoke: " << what << " relative error " << rel
                << " exceeds tolerance " << kernels::kSimdRelTolerance << "\n";
      ++failures;
      return;
    }
    if (rel > *worst) *worst = rel;
  };

  struct EdgeShape {
    size_t m, k, n;
    double sparsity;
  };
  std::vector<EdgeShape> shapes = {{0, 3, 4, 0.0}, {1, 1, 1, 0.0},
                                   {5, 9, 17, 0.5}, {13, 17, 11, 0.9},
                                   {8, 6, 8, 1.0}};
  for (const KernelShape& s : kKernelShapes) {
    shapes.push_back({s.m, s.k, s.n, s.sparsity});
  }
  const KernelMode modes[] = {KernelMode::kAuto, KernelMode::kDense,
                              KernelMode::kSparse};
  // Full kernel/mode sweep against the reference loops under whatever ISA
  // tier is currently pinned: bit gate when `worst` is null (scalar tier),
  // tolerance gate otherwise.
  auto sweep = [&](double* worst) {
    Rng rng(53);
    for (const EdgeShape& s : shapes) {
      Matrix a = RandomWithSparsity(s.m, s.k, s.sparsity, &rng);
      Matrix b = RandomWithSparsity(s.k, s.n, 0.0, &rng);
      Matrix bias = RandomWithSparsity(1, s.n, 0.0, &rng);
      Matrix at_a = RandomWithSparsity(s.k, s.m, s.sparsity, &rng);
      Matrix bt_b = RandomWithSparsity(s.n, s.k, 0.0, &rng);
      Matrix acc_seed = RandomWithSparsity(s.m, s.n, 0.0, &rng);
      Matrix want_nn, want_relu, want_bt, got;
      kernels::reference::GemmNNBias(a, b, bias, &want_nn);
      kernels::reference::GemmNNBiasRelu(a, b, bias, &want_relu);
      kernels::reference::GemmBT(a, bt_b, &want_bt);
      Matrix want_acc = acc_seed;
      kernels::reference::GemmATAccumulate(at_a, b, &want_acc);
      for (KernelMode mode : modes) {
        kernels::ScopedKernelMode pin(mode);
        kernels::GemmNNBias(a, b, bias, &got);
        worst ? expect_close(want_nn, got, "GemmNNBias", worst)
              : expect_equal(want_nn, got, "GemmNNBias");
        kernels::GemmNNBiasRelu(a, b, bias, &got);
        worst ? expect_close(want_relu, got, "GemmNNBiasRelu", worst)
              : expect_equal(want_relu, got, "GemmNNBiasRelu");
        kernels::GemmBT(a, bt_b, &got);
        worst ? expect_close(want_bt, got, "GemmBT", worst)
              : expect_equal(want_bt, got, "GemmBT");
        Matrix acc = acc_seed;
        kernels::GemmATAccumulate(at_a, b, &acc);
        worst ? expect_close(want_acc, acc, "GemmATAccumulate", worst)
              : expect_equal(want_acc, acc, "GemmATAccumulate");
      }
    }
  };

  // Two-mode training loop: byte-identical weights after 10 Adam steps.
  auto train_flat = [](kernels::KernelMode mode) {
    kernels::ScopedKernelMode pin(mode);
    Rng net_rng(59);
    Mlp net({11, 16, 1}, Activation::kRelu, &net_rng);
    AdamOptimizer opt(net.Params(), net.Grads(), 1e-2);
    Matrix x(20, 11);
    x.RandomizeGaussian(&net_rng, 1.0);
    Mlp::Tape tape;
    GradSink sink;
    for (int step = 0; step < 10; ++step) {
      opt.ZeroGrad();
      sink.InitLike(net.Grads());
      const Matrix& out = net.Forward(x, &tape);
      Matrix grad(out.rows(), 1);
      for (size_t r = 0; r < grad.rows(); ++r) {
        grad.At(r, 0) = out.At(r, 0) - 1.0;
      }
      net.Backward(grad, &tape, &sink);
      sink.AddTo(net.Grads());
      opt.Step();
    }
    std::vector<double> flat;
    for (Matrix* p : net.Params()) {
      for (double v : p->data()) flat.push_back(v);
    }
    return flat;
  };
  // Scalar tier: everything must match the reference loops bit for bit,
  // including a reference-vs-dispatch training run.
  {
    kernels::ScopedKernelIsa tier(KernelIsa::kScalar);
    sweep(nullptr);
    std::vector<double> ref = train_flat(KernelMode::kReference);
    std::vector<double> opt = train_flat(KernelMode::kAuto);
    ++checks;
    if (ref != opt) {
      std::cerr << "smoke: two-mode training produced different weights\n";
      ++failures;
    }
    std::cout << "kernel smoke [scalar]: bit-exact against reference\n";
  }

  // Each available SIMD tier: the same sweep gated at kSimdRelTolerance,
  // plus within-tier dispatch invisibility — training under auto/dense/
  // sparse dispatch must produce bit-identical weights inside one tier.
  for (KernelIsa isa : {KernelIsa::kAvx2, KernelIsa::kNeon}) {
    if (!kernels::KernelIsaAvailable(isa)) continue;
    kernels::ScopedKernelIsa tier(isa);
    double worst = 0.0;
    sweep(&worst);
    std::vector<double> auto_w = train_flat(KernelMode::kAuto);
    ++checks;
    if (auto_w != train_flat(KernelMode::kDense) ||
        auto_w != train_flat(KernelMode::kSparse)) {
      std::cerr << "smoke: dispatch modes diverged within the "
                << kernels::KernelIsaName(isa) << " tier\n";
      ++failures;
    }
    std::cout << "kernel smoke [" << kernels::KernelIsaName(isa)
              << "]: max relative error " << worst << " (tolerance "
              << kernels::kSimdRelTolerance << ")\n";
  }

  std::cout << "kernel smoke: " << (checks - failures) << "/" << checks
            << " checks passed\n";
  return failures == 0;
}

// ------------------------------------------------------- persistence gate

/// Save -> Load -> PredictBatch bit-parity on a freshly fitted pipeline,
/// plus a typed-corruption rejection check. Runs as the second half of
/// `bench_micro --smoke`, so CI gates the persistence layer in the same
/// binary that gates kernel parity.
bool RunPersistSmoke() {
  HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
  opt.corpus_size = 120;
  opt.num_envs = 2;
  auto ctx = BenchmarkContext::Create(opt);
  if (!ctx.ok()) {
    std::cerr << "persist smoke: " << ctx.status().ToString() << "\n";
    return false;
  }
  std::vector<PlanSample> train, test;
  (*ctx)->Split(120, &train, &test);
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.pre_reduction_epochs = 2;
  cfg.train.epochs = 3;
  auto pipeline = (*ctx)->FitPipeline(cfg, train);
  if (!pipeline.ok()) {
    std::cerr << "persist smoke: " << pipeline.status().ToString() << "\n";
    return false;
  }

  Fs* fs = Fs::Default();
  const std::string path = "/tmp/qcfe_bench_smoke.qcfa";
  bool ok = true;
  if (Status s = (*pipeline)->Save(path); !s.ok()) {
    std::cerr << "persist smoke: " << s.ToString() << "\n";
    return false;
  }
  auto loaded = Pipeline::Load((*ctx)->db.get(), &(*ctx)->envs,
                               &(*ctx)->templates, path);
  if (!loaded.ok()) {
    std::cerr << "persist smoke: " << loaded.status().ToString() << "\n";
    ok = false;
  } else {
    auto want = (*pipeline)->PredictBatch(test);
    auto got = (*loaded)->PredictBatch(test);
    if (!want.ok() || !got.ok() || want->size() != got->size() ||
        std::memcmp(want->data(), got->data(),
                    want->size() * sizeof(double)) != 0) {
      std::cerr << "persist smoke: loaded pipeline is not bit-identical\n";
      ok = false;
    }
  }

  // Corruption must be rejected with a typed status, never served.
  if (auto bytes = fs->ReadFile(path); bytes.ok()) {
    std::string damaged = *bytes;
    damaged[damaged.size() / 2] ^= 0x01;
    QCFE_CHECK_OK(AtomicWriteFile(fs, path, damaged));
    auto rejected = Pipeline::Load((*ctx)->db.get(), &(*ctx)->envs,
                                   &(*ctx)->templates, path);
    if (rejected.ok() ||
        rejected.status().code() != StatusCode::kDataLoss) {
      std::cerr << "persist smoke: corrupted artifact not rejected as "
                   "DataLoss\n";
      ok = false;
    }
  } else {
    std::cerr << "persist smoke: " << bytes.status().ToString() << "\n";
    ok = false;
  }
  // Best-effort temp cleanup; the gate result is what matters.
  (void)fs->RemoveFile(path);
  if (ok) {
    std::cout << "persist smoke: save/load round trip bit-exact; corrupted "
                 "artifact rejected (DataLoss)\n";
  }
  return ok;
}

// ---------------------------------------------------- drift-detector gate

/// Sanity gate on the pure drift predicate (adapt/drift_detector.h): a
/// clearly drifted q-error window must trip, a stable one must not, and a
/// window below min_samples must never trip no matter how bad it looks.
/// Runs as the third leg of `bench_micro --smoke` so CI catches a
/// miscalibrated detector before it can flap production retrains.
bool RunAdaptSmoke() {
  adapt::DriftConfig cfg;  // stock thresholds, exactly what servers deploy
  bool ok = true;

  std::vector<double> stable;
  for (size_t i = 0; i < 64; ++i) stable.push_back(i % 2 == 0 ? 1.05 : 1.35);
  if (adapt::DetectDrift(stable, 1.2, cfg).drifted) {
    std::cerr << "adapt smoke: stable window tripped the detector\n";
    ok = false;
  }

  std::vector<double> drifted(64, 4.0);
  adapt::DriftVerdict v = adapt::DetectDrift(drifted, 1.2, cfg);
  if (!v.drifted || !v.mean_trip) {
    std::cerr << "adapt smoke: 4x-degraded window did not trip (mean "
              << v.window_mean_qerror << " vs baseline "
              << v.baseline_mean_qerror << ")\n";
    ok = false;
  }

  std::vector<double> premature(cfg.min_samples - 1, 100.0);
  if (adapt::DetectDrift(premature, 1.0, cfg).drifted) {
    std::cerr << "adapt smoke: tripped below min_samples\n";
    ok = false;
  }

  if (ok) {
    std::cout << "adapt smoke: drift detector trips on degraded windows, "
                 "stays quiet on stable and short ones\n";
  }
  return ok;
}

}  // namespace
}  // namespace qcfe

/// BENCHMARK_MAIN plus a post-run dump of the sweep results: any run that
/// included the *Threads / *Kernel* benchmarks updates BENCH_parallel.json
/// (merging with sections a partial rerun did not touch). `--smoke` runs
/// the kernel parity gate instead of benchmarks.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      const bool kernels_ok = qcfe::RunKernelSmoke();
      const bool persist_ok = qcfe::RunPersistSmoke();
      const bool adapt_ok = qcfe::RunAdaptSmoke();
      return kernels_ok && persist_ok && adapt_ok ? 0 : 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  auto& recorder = qcfe::ParallelBenchRecorder::Get();
  if (!recorder.empty()) recorder.WriteJson("BENCH_parallel.json");
  return 0;
}
