/// Micro benchmarks (google-benchmark) for the performance-critical pieces:
/// B+-tree operations, query planning/execution, model inference, snapshot
/// fitting and difference-propagation reduction. These back the inference
/// time columns of Table IV and the runtime column of Table VI.
///
/// The *Threads benchmarks sweep the thread-pool parallelism layer
/// (Pipeline::Fit wall-time and batched serving throughput at 1/2/4/8
/// workers); their best observed timings are additionally written to
/// BENCH_parallel.json (machine-readable) when the run includes them, e.g.
///   bench_micro --benchmark_filter=Threads

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>

#include "core/feature_reduction.h"
#include "core/feature_snapshot.h"
#include "engine/btree.h"
#include "harness/evaluate.h"
#include "models/registry.h"
#include "nn/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace qcfe {
namespace {

// Shared lazy fixture: a small sysbench context + trained QPPNet/MSCN, both
// instantiated through the estimator registry like any serving deployment.
struct MicroFixture {
  std::unique_ptr<BenchmarkContext> ctx;
  std::vector<PlanSample> train, test;
  std::unique_ptr<BaseFeaturizer> featurizer;
  std::unique_ptr<CostModel> qpp;
  std::unique_ptr<CostModel> mscn;

  static MicroFixture& Get() {
    static MicroFixture* fixture = [] {
      auto* f = new MicroFixture();
      HarnessOptions opt = OptionsFor("sysbench", RunScale::kQuick);
      opt.corpus_size = 400;
      auto ctx = BenchmarkContext::Create(opt);
      f->ctx = std::move(ctx.value());
      f->ctx->Split(400, &f->train, &f->test);
      f->featurizer = std::make_unique<BaseFeaturizer>(f->ctx->db->catalog());
      EstimatorRegistry& registry = EstimatorRegistry::Global();
      f->qpp = std::move(registry
                             .Create("qppnet", {f->ctx->db->catalog(),
                                                f->featurizer.get(), 1})
                             .value());
      f->mscn = std::move(registry
                              .Create("mscn", {f->ctx->db->catalog(),
                                               f->featurizer.get(), 2})
                              .value());
      TrainConfig cfg;
      cfg.epochs = 8;
      (void)f->qpp->Train(f->train, cfg, nullptr);
      (void)f->mscn->Train(f->train, cfg, nullptr);
      return f;
    }();
    return *fixture;
  }

  /// `n` serving requests drawn by cycling the test split (80 distinct
  /// queries). Batches up to 80 are fully distinct; larger batches model
  /// templated serving traffic where requests repeat (~3.2x at n=256) and
  /// the batched path's request dedup kicks in on top of matrix batching.
  std::vector<PlanSample> BatchOf(size_t n) const {
    std::vector<PlanSample> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) batch.push_back(test[i % test.size()]);
    return batch;
  }
};

void BM_MatMul(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a(n, n), b(n, n);
  a.RandomizeGaussian(&rng, 1.0);
  b.RandomizeGaussian(&rng, 1.0);
  for (auto _ : state) {
    Matrix c = Matrix::MatMul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128);

void BM_BTreeBulkLoad(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<std::pair<double, uint32_t>> entries;
  for (uint32_t i = 0; i < n; ++i) {
    entries.emplace_back(rng.Uniform(0, 1e6), i);
  }
  for (auto _ : state) {
    BPlusTree tree;
    tree.BulkLoad(entries);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeBulkLoad)->Arg(10000)->Arg(100000);

void BM_BTreeRangeScan(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::pair<double, uint32_t>> entries;
  for (uint32_t i = 0; i < 100000; ++i) {
    entries.emplace_back(static_cast<double>(i), i);
  }
  BPlusTree tree;
  tree.BulkLoad(std::move(entries));
  for (auto _ : state) {
    std::vector<uint32_t> out;
    double lo = rng.Uniform(0, 90000);
    tree.RangeScan(lo, true, lo + 1000, true, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BTreeRangeScan);

void BM_PlanQuery(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  QuerySpec spec;
  spec.tables = {"sbtest1"};
  Predicate p;
  p.column = {"sbtest1", "id"};
  p.op = CompareOp::kBetween;
  p.literals = {Value(int64_t{100}), Value(int64_t{199})};
  spec.filters = {p};
  Knobs knobs;
  for (auto _ : state) {
    auto plan = f.ctx->db->Plan(spec, knobs);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_PlanQuery);

void BM_ExecuteQueryCached(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  QuerySpec spec;
  spec.tables = {"sbtest1"};
  Predicate p;
  p.column = {"sbtest1", "id"};
  p.op = CompareOp::kBetween;
  p.literals = {Value(int64_t{100}), Value(int64_t{199})};
  spec.filters = {p};
  Environment env;
  env.hardware = HardwareProfile::H1();
  Rng noise(5);
  for (auto _ : state) {
    auto run = f.ctx->db->Run(spec, env, &noise);
    benchmark::DoNotOptimize(run.ok());
  }
}
BENCHMARK(BM_ExecuteQueryCached);

void BM_QppNetInference(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const PlanSample& s = f.test[i++ % f.test.size()];
    auto p = f.qpp->PredictMs(*s.plan, s.env_id);
    benchmark::DoNotOptimize(p.ok());
  }
}
BENCHMARK(BM_QppNetInference);

void BM_MscnInference(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const PlanSample& s = f.test[i++ % f.test.size()];
    auto p = f.mscn->PredictMs(*s.plan, s.env_id);
    benchmark::DoNotOptimize(p.ok());
  }
}
BENCHMARK(BM_MscnInference);

// Batched vs per-plan serving throughput. items_per_second is served
// requests/sec: compare BM_*PredictScalar/N against BM_*PredictBatch/N at
// the same batch size. Batch sizes 1 and 32 are fully-distinct plans and
// isolate the matrix-batching/allocation win; 256 exceeds the 80-query
// workload (see BatchOf) and additionally measures request deduplication —
// the dominant effect for template-heavy serving traffic, where it pushes
// the batched path past 3x the per-plan loop.

void BM_QppNetPredictScalar(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  std::vector<PlanSample> batch =
      f.BatchOf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (const auto& s : batch) {
      auto p = f.qpp->PredictMs(*s.plan, s.env_id);
      benchmark::DoNotOptimize(p.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_QppNetPredictScalar)->Arg(1)->Arg(32)->Arg(256);

void BM_QppNetPredictBatch(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  std::vector<PlanSample> batch =
      f.BatchOf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto p = f.qpp->PredictBatchMs(batch);
    benchmark::DoNotOptimize(p.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_QppNetPredictBatch)->Arg(1)->Arg(32)->Arg(256);

void BM_MscnPredictScalar(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  std::vector<PlanSample> batch =
      f.BatchOf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (const auto& s : batch) {
      auto p = f.mscn->PredictMs(*s.plan, s.env_id);
      benchmark::DoNotOptimize(p.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_MscnPredictScalar)->Arg(1)->Arg(32)->Arg(256);

void BM_MscnPredictBatch(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  std::vector<PlanSample> batch =
      f.BatchOf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto p = f.mscn->PredictBatchMs(batch);
    benchmark::DoNotOptimize(p.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_MscnPredictBatch)->Arg(1)->Arg(32)->Arg(256);

// ----------------------------------------------------- thread-pool sweeps

/// Collects the best observed timings of the *Threads benchmarks; the
/// custom main() below dumps them as BENCH_parallel.json after the run.
struct ParallelBenchRecorder {
  static ParallelBenchRecorder& Get() {
    static ParallelBenchRecorder recorder;
    return recorder;
  }

  void RecordFit(int threads, double seconds) {
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = fit_seconds.emplace(threads, seconds);
    if (!inserted && seconds < it->second) it->second = seconds;
  }

  void RecordServe(const std::string& model, int threads, size_t batch,
                   double plans_per_sec) {
    std::lock_guard<std::mutex> lock(mu);
    auto key = std::make_pair(model, threads);
    auto [it, inserted] = serve.emplace(key, plans_per_sec);
    if (!inserted && plans_per_sec > it->second) it->second = plans_per_sec;
    serve_batch = batch;
  }

  void RecordTrain(const std::string& model, int threads, double seconds) {
    std::lock_guard<std::mutex> lock(mu);
    auto key = std::make_pair(model, threads);
    auto [it, inserted] = train_seconds.emplace(key, seconds);
    if (!inserted && seconds < it->second) it->second = seconds;
  }

  bool empty() {
    std::lock_guard<std::mutex> lock(mu);
    return fit_seconds.empty() && serve.empty() && train_seconds.empty();
  }

  /// Minimal hand-rolled JSON:
  /// {"fit": [...], "train": [...], "predict_batch": [...]}.
  void WriteJson(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu);
    std::ofstream os(path);
    os << "{\n  \"fit\": [";
    double serial = fit_seconds.count(1) ? fit_seconds.at(1) : 0.0;
    bool first = true;
    for (const auto& [threads, seconds] : fit_seconds) {
      os << (first ? "" : ",") << "\n    {\"threads\": " << threads
         << ", \"seconds\": " << seconds << ", \"speedup\": "
         << (seconds > 0.0 && serial > 0.0 ? serial / seconds : 0.0) << "}";
      first = false;
    }
    os << "\n  ],\n  \"train\": [";
    first = true;
    for (const auto& [key, seconds] : train_seconds) {
      double serial_train = train_seconds.count({key.first, 1})
                                ? train_seconds.at({key.first, 1})
                                : 0.0;
      os << (first ? "" : ",") << "\n    {\"model\": \"" << key.first
         << "\", \"threads\": " << key.second << ", \"seconds\": " << seconds
         << ", \"speedup\": "
         << (seconds > 0.0 && serial_train > 0.0 ? serial_train / seconds
                                                 : 0.0)
         << "}";
      first = false;
    }
    os << "\n  ],\n  \"predict_batch\": [";
    first = true;
    for (const auto& [key, pps] : serve) {
      os << (first ? "" : ",") << "\n    {\"model\": \"" << key.first
         << "\", \"threads\": " << key.second
         << ", \"batch\": " << serve_batch
         << ", \"plans_per_sec\": " << pps << "}";
      first = false;
    }
    os << "\n  ]\n}\n";
    std::cout << "wrote " << path << "\n";
  }

  std::mutex mu;
  std::map<int, double> fit_seconds;
  std::map<std::pair<std::string, int>, double> train_seconds;
  std::map<std::pair<std::string, int>, double> serve;
  size_t serve_batch = 0;
};

/// Full QCFE pipeline fit (snapshot + reduction + training) at a given
/// worker count. All thread counts produce bit-identical pipelines, so the
/// sweep isolates pure wall-clock scaling.
void BM_PipelineFitThreads(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  int threads = static_cast<int>(state.range(0));
  PipelineConfig cfg;
  cfg.estimator = "qppnet";
  cfg.train.epochs = 6;
  cfg.pre_reduction_epochs = 4;
  cfg.parallelism.num_threads = threads;
  for (auto _ : state) {
    WallTimer timer;
    auto pipeline = f.ctx->FitPipeline(cfg, f.train);
    double seconds = timer.Seconds();
    benchmark::DoNotOptimize(pipeline.ok());
    ParallelBenchRecorder::Get().RecordFit(threads, seconds);
  }
}
BENCHMARK(BM_PipelineFitThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Chunk-parallel gradient training at a given worker count: a fresh
/// estimator per iteration, trained for a fixed epoch budget through the
/// attached pool. All thread counts produce bit-identical models (fixed
/// chunk partition + chunk-order sink reduction), so the sweep isolates
/// pure wall-clock scaling of Train itself.
template <const char* kModel>
void BM_TrainThreads(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  TrainConfig cfg;
  cfg.epochs = 8;
  for (auto _ : state) {
    state.PauseTiming();
    auto model = EstimatorRegistry::Global()
                     .Create(kModel, {f.ctx->db->catalog(),
                                      f.featurizer.get(), 3})
                     .value();
    model->set_thread_pool(pool.get());
    state.ResumeTiming();
    WallTimer timer;
    benchmark::DoNotOptimize(model->Train(f.train, cfg, nullptr).ok());
    ParallelBenchRecorder::Get().RecordTrain(kModel, threads, timer.Seconds());
  }
}

template <const char* kModel>
void BM_PredictBatchThreads(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  const CostModel* model =
      std::string(kModel) == "qppnet" ? f.qpp.get() : f.mscn.get();
  std::vector<PlanSample> batch = f.BatchOf(256);
  for (auto _ : state) {
    WallTimer timer;
    auto p = model->PredictBatchMs(batch, pool.get());
    double seconds = timer.Seconds();
    benchmark::DoNotOptimize(p.ok());
    if (seconds > 0.0) {
      ParallelBenchRecorder::Get().RecordServe(
          kModel, threads, batch.size(),
          static_cast<double>(batch.size()) / seconds);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
constexpr char kQppName[] = "qppnet";
constexpr char kMscnName[] = "mscn";
BENCHMARK_TEMPLATE(BM_TrainThreads, kQppName)
    ->Name("BM_QppNetTrainThreads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_TrainThreads, kMscnName)
    ->Name("BM_MscnTrainThreads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_PredictBatchThreads, kQppName)
    ->Name("BM_QppNetPredictBatchThreads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);
BENCHMARK_TEMPLATE(BM_PredictBatchThreads, kMscnName)
    ->Name("BM_MscnPredictBatchThreads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_SnapshotFit(benchmark::State& state) {
  Rng rng(7);
  std::vector<OperatorObservation> obs;
  for (int i = 0; i < 2000; ++i) {
    OperatorObservation o;
    o.op = static_cast<OpType>(i % kNumOpTypes);
    o.n = rng.Uniform(10, 100000);
    o.n2 = rng.Uniform(10, 1000);
    o.ms = 0.001 * o.n + 0.1;
    obs.push_back(o);
  }
  for (auto _ : state) {
    auto snap = FeatureSnapshot::Fit(obs);
    benchmark::DoNotOptimize(snap.ok());
  }
}
BENCHMARK(BM_SnapshotFit);

void BM_DiffPropReduction(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  ReductionConfig cfg;
  cfg.algorithm = ReductionAlgorithm::kDiffProp;
  cfg.num_references = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = ReduceFeatures(*f.qpp, f.train, cfg);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_DiffPropReduction)->Arg(16)->Arg(64);

}  // namespace
}  // namespace qcfe

/// BENCHMARK_MAIN plus a post-run dump of the thread-sweep results: any run
/// that included the *Threads benchmarks leaves BENCH_parallel.json behind.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  auto& recorder = qcfe::ParallelBenchRecorder::Get();
  if (!recorder.empty()) recorder.WriteJson("BENCH_parallel.json");
  return 0;
}
