/// Reproduces paper Table VII: transferability of the feature snapshot.
/// A basis QCFE(qpp) model is trained on hardware h1; moving to hardware h2
/// only requires computing fresh snapshots (FSO or FST) for the new
/// environments and a short warm-start retrain — reaching accuracy similar
/// to a model trained from scratch on h2 in ~25-30% of the training time.

#include <iostream>

#include "harness/evaluate.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qcfe {
namespace {

int RunBenchmark(const std::string& bench_name, int num_threads) {
  HarnessOptions opt = OptionsFor(bench_name, GetRunScale());
  opt.num_threads = num_threads;
  size_t basis_scale = GetRunScale() == RunScale::kFull ? 10000 : 1000;
  size_t h2_train_size = GetRunScale() == RunScale::kFull ? 2000 : 400;
  size_t h2_test_size = GetRunScale() == RunScale::kFull ? 500 : 100;

  auto ctx = BenchmarkContext::Create(opt);
  if (!ctx.ok()) {
    std::cerr << ctx.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> h1_train, h1_test;
  (*ctx)->Split(basis_scale, &h1_train, &h1_test);

  // New-hardware environments (h2) with distinct ids, plus a labeled corpus
  // collected on them.
  std::vector<Environment> h2_envs = EnvironmentSampler::Sample(
      opt.num_envs, HardwareProfile::H2(), opt.seed * 41 + 13);
  for (auto& e : h2_envs) e.id += 100;
  QueryCollector h2_collector((*ctx)->db.get(), &h2_envs);
  Result<LabeledQuerySet> h2_corpus = h2_collector.Collect(
      (*ctx)->templates, h2_train_size + h2_test_size, opt.seed * 43 + 17);
  if (!h2_corpus.ok()) {
    std::cerr << h2_corpus.status().ToString() << "\n";
    return 1;
  }
  std::vector<PlanSample> h2_train, h2_test;
  for (size_t i = 0; i < h2_corpus->queries.size(); ++i) {
    const LabeledQuery& q = h2_corpus->queries[i];
    (i < h2_train_size ? h2_train : h2_test)
        .push_back({q.plan.get(), q.env_id, q.total_ms});
  }

  auto base_config = [&]() {
    PipelineConfig cfg;
    cfg.estimator = "qppnet";
    cfg.use_snapshot = true;
    cfg.snapshot_from_templates = true;
    cfg.snapshot_scale = 2;
    cfg.use_reduction = true;
    cfg.pre_reduction_epochs = std::max(8, opt.qpp_epochs / 2);
    cfg.train.epochs = opt.qpp_epochs;
    cfg.seed = opt.seed * 47 + 19;
    return cfg;
  };

  PrintBanner(std::cout, "Table VII — snapshot transferability, " + bench_name);
  std::cout << "paper (" << bench_name << "): "
            << (bench_name == "tpch"
                    ? "basis p=0.983 q=1.088 t=381s | trans-FSO q=1.112 "
                      "t=114s | trans-FST q=1.083 t=121s"
                    : "basis p=0.995 q=1.195 t=233s | trans-FSO q=1.246 "
                      "t=66s | trans-FST q=1.278 t=73s")
            << "\n";
  TablePrinter tp({"model", "pearson", "mean q-error", "train (s)"});

  // Row 1: "basis" — trained from scratch on the h2 labels (full budget).
  {
    PipelineConfig cfg = base_config();
    Result<std::unique_ptr<Pipeline>> direct = Pipeline::Fit(
        (*ctx)->db.get(), &h2_envs, &(*ctx)->templates, cfg, h2_train);
    if (!direct.ok()) {
      std::cerr << direct.status().ToString() << "\n";
      return 1;
    }
    EvalResult eval = EvaluateModel(**direct, h2_test);
    tp.AddRow({"basis (direct on h2)", FormatDouble(eval.summary.pearson, 3),
               FormatDouble(eval.summary.mean_qerror, 3),
               FormatDouble((*direct)->train_stats().train_seconds, 2)});
  }

  // Rows 2-3: basis model trained on h1, snapshots swapped for h2, short
  // warm-start retrain (25% of the epochs). The basis uses the same
  // snapshot method (FSO or FST) as the h2 swap so the snapshot dims stay
  // in-distribution for the basis model's feature scalers.
  for (bool fst : {false, true}) {
    PipelineConfig cfg = base_config();
    cfg.snapshot_from_templates = fst;
    Result<std::unique_ptr<Pipeline>> basis =
        (*ctx)->FitPipeline(cfg, h1_train);
    if (!basis.ok()) {
      std::cerr << basis.status().ToString() << "\n";
      return 1;
    }
    // Compute h2 snapshots into the basis pipeline's store (FSO or FST).
    double collect_ms = 0.0;
    Status st = (*basis)->ExtendSnapshots(h2_envs, fst, cfg.snapshot_scale,
                                          cfg.seed + (fst ? 5 : 4),
                                          &collect_ms);
    // kAlreadyExists = cached envs were deliberately refit; proceed.
    if (!st.ok() && st.code() != StatusCode::kAlreadyExists) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    TrainConfig retrain;
    retrain.epochs = std::max(2, opt.qpp_epochs / 4);
    retrain.seed = cfg.seed + 9;
    TrainStats stats;
    st = (*basis)->Retrain(h2_train, retrain, &stats);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    EvalResult eval = EvaluateModel(**basis, h2_test);
    tp.AddRow({fst ? "trans-FST" : "trans-FSO",
               FormatDouble(eval.summary.pearson, 3),
               FormatDouble(eval.summary.mean_qerror, 3),
               FormatDouble(stats.train_seconds, 2)});
  }
  tp.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qcfe

int main(int argc, char** argv) {
  int threads = qcfe::ThreadsFromArgs(argc, argv);
  int rc = qcfe::RunBenchmark("tpch", threads);
  rc |= qcfe::RunBenchmark("joblight", threads);
  return rc;
}
